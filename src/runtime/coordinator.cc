#include "runtime/coordinator.h"

#include <sys/epoll.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <vector>

#include "net/protocol.h"
#include "runtime/metrics.h"
#include "util/log.h"

namespace aalo::runtime {

namespace {

std::chrono::nanoseconds toNanos(util::Seconds s) {
  return std::chrono::nanoseconds(static_cast<std::int64_t>(s * 1e9));
}

/// Reusable shared encode buffer: cleared in place when no connection's
/// send queue still references last round's bytes, replaced otherwise
/// (the slow peer keeps writing from the old buffer undisturbed).
net::Buffer& takeShared(std::shared_ptr<net::Buffer>& slot, obs::Counter& reuse,
                        obs::Counter& alloc) {
  if (slot && slot.use_count() == 1) {
    slot->clear();
    reuse.fetch_add(1);
  } else {
    slot = std::make_shared<net::Buffer>();
    alloc.fetch_add(1);
  }
  return *slot;
}

util::Seconds elapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      state_(config_.dclas.thresholds(), config_.max_on_coflows) {
  registerMetrics();
}

void Coordinator::registerMetrics() {
  registerRobustnessStats(metrics_, stats_, "aalo_coordinator");
  net::registerConnMetrics(metrics_, conn_metrics_, "aalo_coordinator");
  round_duration_ = &metrics_.histogram("aalo_coordinator_round_duration_seconds",
                                        "Coordination tick (evict + GC + broadcast)",
                                        {.first_bound = 1e-6, .num_bounds = 24});
  report_apply_ = &metrics_.histogram("aalo_coordinator_report_apply_seconds",
                                      "Size-report fold into ScheduleState",
                                      {.first_bound = 1e-7, .num_bounds = 24});
  broadcast_bytes_ = &metrics_.counter("aalo_coordinator_broadcast_bytes_total",
                                       "Schedule fan-out wire bytes incl. headers");
  scratch_reuse_ = &metrics_.counter("aalo_coordinator_encode_scratch_reuse_total",
                                     "Broadcast encode buffers cleared in place");
  scratch_alloc_ = &metrics_.counter("aalo_coordinator_encode_scratch_alloc_total",
                                     "Broadcast encode buffers reallocated");
  metrics_.attachGauge("aalo_coordinator_daemons", "Daemons currently connected",
                       [this] { return static_cast<double>(daemonCount()); });
  metrics_.attachGauge("aalo_coordinator_registered_coflows",
                       "Coflows currently registered",
                       [this] { return static_cast<double>(registeredCoflows()); });
  metrics_.attachGauge("aalo_coordinator_tombstones",
                       "Unregister tombstones held (pre-GC)",
                       [this] { return static_cast<double>(tombstoneCount()); });
  metrics_.attachGauge("aalo_coordinator_epoch", "Completed coordination rounds",
                       [this] { return static_cast<double>(epoch()); });
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (running_.exchange(true)) return;
  auto [fd, port] = net::listenTcp(config_.port);
  listener_ = std::move(fd);
  port_ = port;
  loop_.add(listener_.get(), EPOLLIN, [this](std::uint32_t) { onAcceptable(); });
  scheduleTick();
  if (!config_.metrics_dump_path.empty() && config_.metrics_dump_interval > 0) {
    scheduleMetricsDump();
  }
  thread_ = std::thread([this] { loop_.run(); });
  AALO_LOG_INFO << "coordinator listening on 127.0.0.1:" << port_;
}

void Coordinator::stop() {
  // The lifecycle mutex makes racing stop() calls (or stop() racing the
  // destructor) serialize; every caller returns only once shutdown is done.
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!running_.exchange(false)) return;
  loop_.stop();
  if (thread_.joinable()) thread_.join();
  // The loop thread is gone: destroy connections inline (their destructors
  // deregister from the now-idle loop).
  peers_.clear();
  if (listener_.valid()) loop_.remove(listener_.get());
  listener_.reset();
  dumpMetrics();  // Final snapshot so short runs still leave evidence.
}

void Coordinator::scheduleMetricsDump() {
  loop_.callAfter(toNanos(config_.metrics_dump_interval), [this] {
    dumpMetrics();
    if (running_.load(std::memory_order_relaxed)) scheduleMetricsDump();
  });
}

void Coordinator::dumpMetrics() {
  if (config_.metrics_dump_path.empty()) return;
  if (!metrics_.dumpFiles(config_.metrics_dump_path)) {
    AALO_LOG_WARN << "coordinator: failed to write metrics dump to "
                  << config_.metrics_dump_path;
  }
}

void Coordinator::scheduleTick() {
  loop_.callAfter(toNanos(config_.sync_interval), [this] {
    const auto start = std::chrono::steady_clock::now();
    const TimePoint now = net::EventLoop::Clock::now();
    evictStalePeers(now);
    collectTombstones(now);
    broadcastSchedule();
    round_duration_->observe(elapsedSeconds(start));
    if (running_.load(std::memory_order_relaxed)) scheduleTick();
  });
}

void Coordinator::onAcceptable() {
  for (;;) {
    net::Fd fd = net::acceptTcp(listener_.get());
    if (!fd.valid()) break;
    const std::uint64_t key = next_peer_key_++;
    Peer peer;
    peer.connection = std::make_unique<net::Connection>(
        loop_, std::move(fd),
        [this, key](net::Buffer& payload) { onMessage(key, payload); },
        [this, key] { dropPeer(key); }, &conn_metrics_);
    peers_.emplace(key, std::move(peer));
  }
}

void Coordinator::dropPeer(std::uint64_t peer_key) {
  const auto it = peers_.find(peer_key);
  if (it == peers_.end()) return;
  if (it->second.is_daemon) {
    state_.dropDaemon(it->second.daemon_id);
    daemon_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Defer destruction: we may be inside this connection's own callback
  // chain (close handler), or about to destroy it from the eviction pass.
  auto doomed = std::move(it->second.connection);
  peers_.erase(it);
  loop_.post([conn = std::shared_ptr<net::Connection>(std::move(doomed))] {});
}

void Coordinator::evictStalePeers(TimePoint now) {
  if (config_.liveness_timeout_intervals <= 0 &&
      config_.one_way_timeout_intervals <= 0) {
    return;
  }
  const auto liveness_budget =
      toNanos(config_.sync_interval * config_.liveness_timeout_intervals);
  const auto one_way_budget =
      toNanos(config_.sync_interval * config_.one_way_timeout_intervals);
  std::vector<std::uint64_t> evict;
  for (const auto& [key, peer] : peers_) {
    if (!peer.is_daemon) continue;
    if (config_.liveness_timeout_intervals > 0 &&
        now - peer.last_report > liveness_budget) {
      stats_.daemons_evicted.fetch_add(1, std::memory_order_relaxed);
      AALO_LOG_WARN << "coordinator: evicting daemon " << peer.daemon_id
                    << " (no report for " << config_.liveness_timeout_intervals
                    << " intervals)";
      evict.push_back(key);
      continue;
    }
    // One-way failure: its reports arrive (first branch did not trip) but
    // it never acknowledges our broadcasts — the send path is dead. Only
    // meaningful once we have actually broadcast something newer than the
    // daemon's echo.
    if (config_.one_way_timeout_intervals > 0 &&
        epoch_.load(std::memory_order_relaxed) > peer.echoed_epoch &&
        now - peer.last_echo_advance > one_way_budget) {
      stats_.one_way_evictions.fetch_add(1, std::memory_order_relaxed);
      AALO_LOG_WARN << "coordinator: evicting daemon " << peer.daemon_id
                    << " (epoch echo stuck at " << peer.echoed_epoch
                    << "; one-way link)";
      evict.push_back(key);
    }
  }
  for (const std::uint64_t key : evict) dropPeer(key);
}

void Coordinator::collectTombstones(TimePoint now) {
  if (config_.tombstone_gc_intervals <= 0 || unregistered_.empty()) return;
  const auto budget =
      toNanos(config_.sync_interval * config_.tombstone_gc_intervals);
  for (auto it = unregistered_.begin(); it != unregistered_.end();) {
    if (now - it->second > budget) {
      stats_.tombstones_collected.fetch_add(1, std::memory_order_relaxed);
      it = unregistered_.erase(it);
    } else {
      ++it;
    }
  }
  tombstone_count_.store(unregistered_.size(), std::memory_order_relaxed);
}

void Coordinator::onMessage(std::uint64_t peer_key, net::Buffer& payload) {
  const auto it = peers_.find(peer_key);
  if (it == peers_.end()) return;
  Peer& peer = *&it->second;

  net::Message message;
  try {
    message = net::decodeMessage(payload);
  } catch (const std::exception& e) {
    stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
    AALO_LOG_WARN << "coordinator: dropping malformed frame: " << e.what();
    return;
  }

  const TimePoint now = net::EventLoop::Clock::now();
  switch (message.type) {
    case net::MessageType::kHello:
      peer.is_daemon = true;
      peer.daemon_id = message.daemon_id;
      peer.last_report = now;
      peer.last_echo_advance = now;
      daemon_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case net::MessageType::kSizeReport:
      if (peer.is_daemon) {
        const auto apply_start = std::chrono::steady_clock::now();
        peer.last_report = now;
        if (message.epoch > peer.echoed_epoch) {
          peer.echoed_epoch = message.epoch;
          peer.last_echo_advance = now;
        }
        for (const auto& s : message.sizes) {
          // Completed coflows must not resurface (tombstone); remember the
          // mention so the tombstone outlives every daemon still reporting.
          const auto tomb = unregistered_.find(s.id);
          if (tomb != unregistered_.end()) {
            tomb->second = now;
            continue;
          }
          state_.applySize(peer.daemon_id, s.id, s.bytes);
        }
        report_apply_->observe(elapsedSeconds(apply_start));
      }
      break;
    case net::MessageType::kRegisterCoflow: {
      coflow::CoflowId id;
      if (message.parents.empty()) {
        id = id_generator_.newRootId();
      } else {
        try {
          id = id_generator_.newChildId(message.parents);
        } catch (const std::invalid_argument&) {
          id = id_generator_.newRootId();  // Malformed parents: fresh DAG.
        }
      }
      state_.registerCoflow(id);
      registered_count_.store(state_.registeredCount(),
                              std::memory_order_relaxed);
      net::Message reply;
      reply.type = net::MessageType::kRegisterReply;
      reply.request_id = message.request_id;
      reply.coflow = id;
      net::Buffer out;
      net::encodeMessage(reply, out);
      peer.connection->sendFrame(out);
      break;
    }
    case net::MessageType::kUnregisterCoflow:
      state_.unregisterCoflow(message.coflow);
      unregistered_[message.coflow] = now;
      tombstone_count_.store(unregistered_.size(), std::memory_order_relaxed);
      registered_count_.store(state_.registeredCount(),
                              std::memory_order_relaxed);
      break;
    case net::MessageType::kSnapshotRequest:
      // The daemon detected an epoch gap (dropped broadcast) or lost its
      // schedule: serve a full snapshot on the next round instead of a
      // delta it cannot apply.
      if (peer.is_daemon) {
        peer.needs_snapshot = true;
        stats_.snapshot_requests.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    default:
      AALO_LOG_WARN << "coordinator: unexpected message type";
  }
}

void Coordinator::broadcastSchedule() {
  const std::uint64_t epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.full_broadcasts) {
    broadcastFull(epoch);
  } else {
    broadcastDelta(epoch);
  }
}

void Coordinator::broadcastFull(std::uint64_t epoch) {
  // Oracle mode: rebuild the whole schedule from the stored reports every
  // round (global size = sum of local observations; attained service only
  // grows, so last-writer-wins per daemon is exact). The tombstone filter
  // covers sizes stored before an unregister; fresh mentions are filtered
  // on arrival.
  net::Message update;
  update.type = net::MessageType::kScheduleUpdate;
  update.epoch = epoch;
  update.schedule.swap(entries_scratch_);
  state_.legacySchedule(
      [this](const coflow::CoflowId& id) { return unregistered_.contains(id); },
      update.schedule);

  net::Buffer& out = takeShared(snapshot_scratch_, *scratch_reuse_, *scratch_alloc_);
  net::encodeMessage(update, out);
  update.schedule.swap(entries_scratch_);  // Keep the capacity for reuse.
  // Snapshot the peer keys: a failing send may close a connection, whose
  // close handler erases it from peers_ — mutating the map mid-iteration.
  std::vector<std::uint64_t> keys;
  keys.reserve(peers_.size());
  for (const auto& [key, peer] : peers_) {
    if (peer.is_daemon) keys.push_back(key);
  }
  for (const std::uint64_t key : keys) {
    const auto it = peers_.find(key);
    if (it == peers_.end()) continue;
    if (it->second.connection && !it->second.connection->closed()) {
      it->second.connection->sendFrame(snapshot_scratch_);
      broadcast_bytes_->fetch_add(4 + snapshot_scratch_->readableBytes());
      stats_.snapshot_broadcasts.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Coordinator::broadcastDelta(std::uint64_t epoch) {
  const bool changed = state_.buildDelta(entries_scratch_, removals_scratch_);

  // Encode the delta once (an unchanged schedule encodes as an epoch-only
  // heartbeat); the snapshot is encoded lazily — most rounds no peer
  // needs one.
  net::Message message;
  message.type = net::MessageType::kScheduleDelta;
  message.epoch = epoch;
  message.base_epoch = epoch - 1;
  message.schedule.swap(entries_scratch_);
  message.removals.swap(removals_scratch_);
  net::Buffer& delta_out =
      takeShared(delta_scratch_, *scratch_reuse_, *scratch_alloc_);
  net::encodeMessage(message, delta_out);
  message.schedule.swap(entries_scratch_);
  message.removals.swap(removals_scratch_);
  bool snapshot_encoded = false;

  std::vector<std::uint64_t> keys;
  keys.reserve(peers_.size());
  for (const auto& [key, peer] : peers_) {
    if (peer.is_daemon) keys.push_back(key);
  }
  for (const std::uint64_t key : keys) {
    const auto it = peers_.find(key);
    if (it == peers_.end()) continue;
    Peer& peer = it->second;
    if (!peer.connection || peer.connection->closed()) continue;
    const bool want_snapshot =
        peer.needs_snapshot ||
        (config_.snapshot_every > 0 &&
         peer.frames_since_snapshot >= config_.snapshot_every);
    if (want_snapshot) {
      if (!snapshot_encoded) {
        message.type = net::MessageType::kScheduleUpdate;
        message.base_epoch = 0;
        message.removals.clear();
        message.schedule.swap(entries_scratch_);
        state_.snapshotEntries(message.schedule);
        net::Buffer& snap_out =
            takeShared(snapshot_scratch_, *scratch_reuse_, *scratch_alloc_);
        net::encodeMessage(message, snap_out);
        message.schedule.swap(entries_scratch_);
        snapshot_encoded = true;
      }
      peer.connection->sendFrame(snapshot_scratch_);
      broadcast_bytes_->fetch_add(4 + snapshot_scratch_->readableBytes());
      peer.needs_snapshot = false;
      peer.frames_since_snapshot = 0;
      stats_.snapshot_broadcasts.fetch_add(1, std::memory_order_relaxed);
    } else {
      peer.connection->sendFrame(delta_scratch_);
      broadcast_bytes_->fetch_add(4 + delta_scratch_->readableBytes());
      ++peer.frames_since_snapshot;
      (changed ? stats_.delta_broadcasts : stats_.broadcasts_suppressed)
          .fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::unordered_map<coflow::CoflowId, double> Coordinator::globalSizes() {
  if (!running_.load(std::memory_order_relaxed)) return state_.globalSizes();
  std::promise<std::unordered_map<coflow::CoflowId, double>> promise;
  auto future = promise.get_future();
  loop_.post([this, &promise] { promise.set_value(state_.globalSizes()); });
  return future.get();
}

}  // namespace aalo::runtime
