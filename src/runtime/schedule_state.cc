#include "runtime/schedule_state.h"

#include <algorithm>

#include "sched/dclas.h"

namespace aalo::runtime {

namespace {

/// Deterministic wire order for delta payloads: same key the schedule
/// itself is sorted by.
bool entryLess(const net::ScheduleEntry& a, const net::ScheduleEntry& b) {
  if (a.queue != b.queue) return a.queue < b.queue;
  return coflow::CoflowIdFifoLess{}(a.id, b.id);
}

}  // namespace

ScheduleState::ScheduleState(std::vector<util::Bytes> thresholds,
                             std::size_t max_on_coflows)
    : thresholds_(std::move(thresholds)), max_on_(max_on_coflows) {}

ScheduleState::Entry& ScheduleState::ensureEntry(const coflow::CoflowId& id) {
  auto [it, inserted] = global_.try_emplace(id);
  if (inserted) {
    // Starts OFF under a finite ON budget; refreshOnSet() flips it on if
    // it fits — the appearance itself already marks it dirty.
    it->second.on = max_on_ == 0;
    order_.emplace(it->second.queue, id);
    dirty_.insert(id);
  }
  return it->second;
}

void ScheduleState::moveToQueue(const coflow::CoflowId& id, Entry& entry,
                                int queue) {
  if (queue == entry.queue) return;
  order_.erase({entry.queue, id});
  entry.queue = queue;
  order_.emplace(queue, id);
  dirty_.insert(id);
}

void ScheduleState::registerCoflow(const coflow::CoflowId& id) {
  registered_.insert(id);
  ensureEntry(id);
}

void ScheduleState::unregisterCoflow(const coflow::CoflowId& id) {
  registered_.erase(id);
  auto it = global_.find(id);
  if (it != global_.end()) {
    order_.erase({it->second.queue, id});
    if (it->second.sent) removed_.push_back(id);
    dirty_.erase(id);
    on_ids_.erase(id);
    global_.erase(it);
  }
  for (auto& [daemon, sizes] : reported_) sizes.erase(id);
}

void ScheduleState::applySize(std::uint64_t daemon_id,
                              const coflow::CoflowId& id, double bytes) {
  double& stored = reported_[daemon_id][id];
  const double diff = bytes - stored;
  stored = bytes;
  Entry& entry = ensureEntry(id);
  if (diff == 0) return;
  entry.bytes += diff;
  moveToQueue(id, entry,
              sched::queueForSize(thresholds_,
                                  static_cast<util::Bytes>(entry.bytes)));
}

void ScheduleState::dropDaemon(std::uint64_t daemon_id) {
  auto it = reported_.find(daemon_id);
  if (it == reported_.end()) return;
  for (const auto& [id, bytes] : it->second) {
    auto git = global_.find(id);
    if (git == global_.end()) continue;
    Entry& entry = git->second;
    entry.bytes -= bytes;
    if (entry.bytes < 0) entry.bytes = 0;
    moveToQueue(id, entry,
                sched::queueForSize(thresholds_,
                                    static_cast<util::Bytes>(entry.bytes)));
  }
  reported_.erase(it);
}

double ScheduleState::globalBytes(const coflow::CoflowId& id) const {
  auto it = global_.find(id);
  return it == global_.end() ? 0.0 : it->second.bytes;
}

std::optional<net::ScheduleEntry> ScheduleState::entryFor(
    const coflow::CoflowId& id) const {
  auto it = global_.find(id);
  if (it == global_.end()) return std::nullopt;
  return net::ScheduleEntry{.id = id,
                            .global_bytes = it->second.bytes,
                            .queue = it->second.queue,
                            .on = it->second.on};
}

std::unordered_map<coflow::CoflowId, double> ScheduleState::globalSizes()
    const {
  std::unordered_map<coflow::CoflowId, double> out;
  out.reserve(global_.size());
  for (const auto& [id, entry] : global_) out.emplace(id, entry.bytes);
  return out;
}

void ScheduleState::refreshOnSet() {
  if (max_on_ == 0) return;
  std::unordered_set<coflow::CoflowId> now_on;
  now_on.reserve(max_on_);
  std::size_t taken = 0;
  for (const auto& [queue, id] : order_) {
    if (taken++ == max_on_) break;
    now_on.insert(id);
  }
  for (const auto& id : on_ids_) {
    if (now_on.contains(id)) continue;
    auto it = global_.find(id);
    if (it == global_.end()) continue;
    it->second.on = false;
    dirty_.insert(id);
  }
  for (const auto& id : now_on) {
    if (on_ids_.contains(id)) continue;
    global_.at(id).on = true;
    dirty_.insert(id);
  }
  on_ids_ = std::move(now_on);
}

bool ScheduleState::buildDelta(std::vector<net::ScheduleEntry>& entries,
                               std::vector<coflow::CoflowId>& removals) {
  entries.clear();
  removals.clear();
  refreshOnSet();
  for (const auto& id : dirty_) {
    auto it = global_.find(id);
    if (it == global_.end()) continue;  // Unregistered since it dirtied.
    Entry& entry = it->second;
    // Net no-op (e.g. demoted then dropped-daemon promoted back): the
    // delta chain already announced this exact state, skip it.
    if (entry.sent && entry.queue == entry.sent_queue &&
        entry.on == entry.sent_on) {
      continue;
    }
    entries.push_back(net::ScheduleEntry{.id = id,
                                         .global_bytes = entry.bytes,
                                         .queue = entry.queue,
                                         .on = entry.on});
    entry.sent = true;
    entry.sent_queue = entry.queue;
    entry.sent_on = entry.on;
  }
  dirty_.clear();
  std::sort(entries.begin(), entries.end(), entryLess);
  removals = std::move(removed_);
  removed_.clear();
  std::sort(removals.begin(), removals.end(), coflow::CoflowIdFifoLess{});
  return !entries.empty() || !removals.empty();
}

void ScheduleState::snapshotEntries(std::vector<net::ScheduleEntry>& out)
    const {
  out.clear();
  out.reserve(order_.size());
  std::size_t position = 0;
  for (const auto& [queue, id] : order_) {
    const Entry& entry = global_.at(id);
    out.push_back(net::ScheduleEntry{
        .id = id,
        .global_bytes = entry.bytes,
        .queue = queue,
        .on = max_on_ == 0 || position < max_on_});
    ++position;
  }
}

void ScheduleState::legacySchedule(const TombstoneFilter& tombstoned,
                                   std::vector<net::ScheduleEntry>& out)
    const {
  std::unordered_map<coflow::CoflowId, double> global;
  for (const auto& id : registered_) global[id] = 0.0;
  for (const auto& [daemon, sizes] : reported_) {
    for (const auto& [id, bytes] : sizes) {
      if (tombstoned && tombstoned(id)) continue;
      global[id] += bytes;
    }
  }
  out.clear();
  out.reserve(global.size());
  for (const auto& [id, bytes] : global) {
    out.push_back(net::ScheduleEntry{
        .id = id,
        .global_bytes = bytes,
        .queue = sched::queueForSize(thresholds_,
                                     static_cast<util::Bytes>(bytes)),
        .on = true});
  }
  std::sort(out.begin(), out.end(), entryLess);
  if (max_on_ > 0) {
    for (std::size_t i = max_on_; i < out.size(); ++i) out[i].on = false;
  }
}

}  // namespace aalo::runtime
