// Aalo daemon: the per-machine agent (Figure 2).
//
// The data path (ThrottledWriter) reports bytes here; every Δ the daemon
// forwards its local observations to the coordinator and receives the
// global schedule. Between updates it makes local decisions: coflows it
// has never seen in a schedule are treated as highest priority (new ==
// likely small, §3.2).
//
// Delta-coded data path (default): reports carry only the coflows whose
// local bytes changed since the last report (absolute values, so each
// report is self-sufficient per coflow), with periodic full resyncs;
// schedule updates arrive as kScheduleDelta frames chained by epoch — a
// detected gap triggers a kSnapshotRequest and a forced full report.
//
// Fault tolerance (§3.2 hardening):
//  * Reconnects use exponential backoff with decorrelated jitter (seeded,
//    so failure scenarios replay deterministically); absolute local sizes
//    are kept across the outage and re-teach a restarted coordinator.
//  * Stale-schedule degradation — if no broadcast arrives for M·Δ on a
//    still-open socket (a one-way link or hung coordinator), the daemon
//    flips to local-only mode: connected() turns false, queueOf()/isOn()
//    return their local defaults (queue 0 / ON) and ThrottledWriter
//    degrades to unthrottled TCP.
//  * Duplicated or reordered schedule broadcasts are ignored: within one
//    connection only strictly newer epochs are applied.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coflow/ids.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/metrics.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "runtime/robustness.h"
#include "sched/dclas.h"
#include "util/rng.h"
#include "util/units.h"

namespace aalo::runtime {

struct DaemonConfig {
  std::uint16_t coordinator_port = 0;
  /// Ordered coordinator endpoints (primary first, then standbys), all on
  /// 127.0.0.1. Empty = just {coordinator_port}. The daemon dials them
  /// round-robin: a failed dial, a connection that dies before syncing, or
  /// a stale-schedule transition rotates to the next endpoint — so when a
  /// promoted standby is broadcasting, every daemon finds it within its
  /// reconnect/staleness budget.
  std::vector<std::uint16_t> coordinator_ports;
  std::uint64_t daemon_id = 0;
  util::Seconds sync_interval = 0.010;
  /// Queue weight for 0-based queue q given K queues (K - q, as in §7.1).
  int num_queues = 10;
  /// Local uplink capacity divided among this machine's coflows.
  util::Rate uplink_capacity = util::kGbps;
  /// §3.2 fault tolerance: base reconnect delay after losing the
  /// coordinator (locally observed sizes are kept across the outage).
  /// 0 disables reconnection.
  util::Seconds reconnect_interval = 0.2;
  /// Backoff ceiling: retry delays grow from reconnect_interval with
  /// decorrelated jitter up to this value.
  util::Seconds reconnect_max_backoff = 2.0;
  /// Seed for the jitter Rng; 0 derives one from daemon_id so distinct
  /// daemons never thunder in lockstep.
  std::uint64_t reconnect_seed = 0;
  /// Flip to local-only mode after this many sync intervals without a
  /// schedule broadcast on an open socket. 0 disables stale detection.
  int stale_after_intervals = 25;
  /// Thresholds used to discretize *locally* attained service when no
  /// global information exists for a coflow — degraded mode, or the first
  /// rounds after a coordinator restart. Mirror the coordinator's D-CLAS
  /// config. Local bytes lower-bound the global size, so the local queue
  /// never promotes a coflow above what the global schedule would assign.
  sched::DClasConfig dclas;
  /// Delta reports: every report carries only the coflows whose local
  /// bytes changed since the previous one (absolute values), with a full
  /// absolute resync every this many reports — the §3.2 safety net that
  /// re-teaches a restarted coordinator. Forced resyncs (reconnect, epoch
  /// gap) happen regardless. 0 = forced resyncs only.
  int resync_intervals = 10;
  /// Oracle mode: report every locally accounted coflow each Δ exactly as
  /// the pre-delta daemon did. Kept for A/B benchmarking and the
  /// equivalence tests.
  bool full_reports = false;
  /// Delta reports with no changed coflows are suppressed entirely,
  /// except every this many ticks an empty keepalive still goes out so
  /// the coordinator's liveness watchdog and epoch-echo keep working.
  /// Must stay below liveness_timeout_intervals; 0 = report every Δ.
  int report_keepalive_intervals = 3;
  /// Backpressure: skip a size report while more than this many bytes sit
  /// unsent in the connection's send queue (the coordinator stopped
  /// draining). Skipped coflows stay dirty, and reports carry absolute
  /// sizes, so the next report that does go out is lossless. The
  /// connection's hard overflow limit is set to 4x this. 0 = never shed.
  std::size_t send_queue_max = 0;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  void start();
  /// Idempotent and safe under concurrent callers.
  void stop();

  /// Thread-safe, called by the data path: `delta` more bytes of `id`
  /// left this machine.
  void reportBytes(coflow::CoflowId id, util::Bytes delta);

  /// Thread-safe: a writer for `id` became active/inactive on this
  /// machine (used for local rate assignment).
  void writerActive(coflow::CoflowId id, bool active);

  /// Queue of a coflow per the last global schedule. When no schedule
  /// entry exists — a never-scheduled coflow, or *any* coflow while
  /// degraded (disconnected or stale schedule) — falls back to local
  /// D-CLAS over locally attained bytes (§3.2): genuinely new coflows get
  /// the highest-priority queue (0), known ones keep at most the priority
  /// their local size justifies, so a coflow is never promoted above a
  /// queue it already left.
  int queueOf(coflow::CoflowId id) const;

  /// §6.2 ON/OFF signal from the last schedule; unknown coflows are ON
  /// (new == likely small, scheduled locally), and while degraded every
  /// coflow is ON — a dead schedule must not gate anyone.
  bool isOn(coflow::CoflowId id) const;

  /// D-CLAS rate (bytes/s) the local uplink grants `id` right now:
  /// weighted share across queues, FIFO within the queue among this
  /// machine's active coflows. Infinity while degraded (plain TCP).
  util::Rate rateFor(coflow::CoflowId id) const;

  std::uint64_t lastEpoch() const { return last_epoch_.load(std::memory_order_relaxed); }
  /// True only when the socket is up AND the schedule is fresh: a hung
  /// coordinator (no broadcast for M·Δ) reads as disconnected, which is
  /// exactly what ThrottledWriter's degrade-to-unthrottled path needs.
  bool connected() const {
    return socket_connected_.load(std::memory_order_relaxed) &&
           schedule_fresh_.load(std::memory_order_relaxed);
  }

  const RobustnessStats& stats() const { return stats_; }

  /// Current reconnect delay (test/diagnostic): stays at
  /// reconnect_interval after a connection that reached a synced schedule,
  /// grows with decorrelated jitter while dials fail *or* connections die
  /// before the first schedule applies (crash-looping coordinator).
  double currentReconnectBackoff() const {
    return next_backoff_.load(std::memory_order_relaxed);
  }
  /// Index into the endpoint list the next dial will use (mod size).
  std::size_t endpointIndex() const {
    return endpoint_index_.load(std::memory_order_relaxed);
  }
  /// Highest coordinator fencing epoch ever seen; broadcasts below it are
  /// from a deposed primary and are ignored outright.
  std::uint64_t fenceSeen() const {
    return max_fence_.load(std::memory_order_relaxed);
  }

  /// Observability registry: robustness counters (`aalo_daemon_*`), wire
  /// counters, encode-scratch reuse, lifecycle gauges. Rendering is
  /// thread-safe, so callers may dump it from any thread.
  const obs::Registry& metrics() const { return metrics_; }

 private:
  void sendHello();
  void sendSizeReport();
  void sendSnapshotRequest();
  void checkScheduleFreshness();
  void scheduleTick();
  void scheduleReconnect();
  bool tryConnect();
  /// Decorrelated-jitter growth toward reconnect_max_backoff.
  void growBackoff();
  /// Advance to the next coordinator endpoint (no-op with one endpoint).
  void rotateEndpoint();
  void onMessage(net::Buffer& payload);
  void applyScheduleUpdate(const net::Message& message);
  void applyScheduleDelta(const net::Message& message);
  /// Post-apply bookkeeping shared by snapshots and deltas: prune, track
  /// seen coflows, publish the epoch, leave local-only mode.
  void finishApply(std::uint64_t epoch);
  /// GC of local accounting for completed coflows; membership in the
  /// applied schedule is read from queue_of_.
  void pruneCompleted();
  /// Local D-CLAS: discretize locally attained bytes. Needs mutex_ held.
  int localQueueLocked(coflow::CoflowId id) const;
  void registerMetrics();

  DaemonConfig config_;
  std::vector<util::Bytes> thresholds_;  ///< From config_.dclas, immutable.
  net::EventLoop loop_;
  std::unique_ptr<net::Connection> connection_;
  std::thread thread_;
  std::mutex lifecycle_mutex_;
  std::atomic<bool> running_{false};
  std::atomic<bool> socket_connected_{false};
  std::atomic<bool> schedule_fresh_{false};
  std::atomic<std::uint64_t> last_epoch_{0};

  // Loop-thread-only state (start() touches it before the thread exists;
  // the atomics among them exist only for cross-thread test accessors).
  util::Rng backoff_rng_;
  std::atomic<double> next_backoff_{0};
  /// Ordered endpoint list resolved from the config (never empty).
  std::vector<std::uint16_t> endpoints_;
  std::atomic<std::size_t> endpoint_index_{0};
  /// Highest fence witnessed across all connections (coordinator
  /// incarnation high-water mark).
  std::atomic<std::uint64_t> max_fence_{0};
  /// Whether the current connection has applied at least one schedule;
  /// only then is the reconnect backoff reset to its base (a dial that
  /// succeeds but dies unsynced keeps backing off).
  bool synced_since_connect_ = false;
  std::uint64_t conn_epoch_ = 0;  ///< Highest epoch applied this connection.
  net::EventLoop::Clock::time_point last_broadcast_{};
  /// Next size report must carry every coflow absolutely: set on (re)
  /// connect and on an epoch gap, so a restarted coordinator re-learns
  /// within one report (§3.2).
  bool force_full_report_ = true;
  int reports_since_resync_ = 0;
  /// Ticks since a report actually went out (keepalive suppression).
  int ticks_since_report_ = 0;
  /// Reusable encode buffer for outgoing reports/requests.
  net::Buffer encode_scratch_;
  /// Coflows some schedule on the current connection contained; one that
  /// later disappears from the schedule has been unregistered and its
  /// local accounting can be pruned.
  std::unordered_set<coflow::CoflowId> seen_in_schedule_;
  /// Locally accounted coflows never seen in a schedule: consecutive
  /// applied schedules that omitted them. At the budget below they are
  /// pruned — they were unregistered before their first schedule arrived.
  std::unordered_map<coflow::CoflowId, int> missed_schedules_;
  static constexpr int kMissedSchedulesBeforePrune = 10;

  mutable std::mutex mutex_;
  std::unordered_map<coflow::CoflowId, util::Bytes> local_sent_;
  /// Coflows whose local_sent_ changed since the last report (delta
  /// reports carry only these, still as absolute values).
  std::unordered_set<coflow::CoflowId> report_dirty_;
  std::unordered_map<coflow::CoflowId, int> active_writers_;
  std::unordered_map<coflow::CoflowId, std::int32_t> queue_of_;
  std::unordered_map<coflow::CoflowId, bool> on_;

  RobustnessStats stats_;

  // Observability (registered once in the constructor).
  obs::Registry metrics_;
  net::ConnMetrics conn_metrics_;
  obs::Counter* scratch_reuse_ = nullptr;
};

}  // namespace aalo::runtime
