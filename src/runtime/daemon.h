// Aalo daemon: the per-machine agent (Figure 2).
//
// The data path (ThrottledWriter) reports bytes here; every Δ the daemon
// forwards its local observations to the coordinator and receives the
// global schedule. Between updates it makes local decisions: coflows it
// has never seen in a schedule are treated as highest priority (new ==
// likely small, §3.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coflow/ids.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/protocol.h"
#include "util/units.h"

namespace aalo::runtime {

struct DaemonConfig {
  std::uint16_t coordinator_port = 0;
  std::uint64_t daemon_id = 0;
  util::Seconds sync_interval = 0.010;
  /// Queue weight for 0-based queue q given K queues (K - q, as in §7.1).
  int num_queues = 10;
  /// Local uplink capacity divided among this machine's coflows.
  util::Rate uplink_capacity = util::kGbps;
  /// §3.2 fault tolerance: after losing the coordinator, retry connecting
  /// this often (locally observed sizes are kept across the outage).
  /// 0 disables reconnection.
  util::Seconds reconnect_interval = 0.2;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  void start();
  void stop();

  /// Thread-safe, called by the data path: `delta` more bytes of `id`
  /// left this machine.
  void reportBytes(coflow::CoflowId id, util::Bytes delta);

  /// Thread-safe: a writer for `id` became active/inactive on this
  /// machine (used for local rate assignment).
  void writerActive(coflow::CoflowId id, bool active);

  /// Queue of a coflow per the last global schedule; never-scheduled
  /// coflows sit in the highest-priority queue (0).
  int queueOf(coflow::CoflowId id) const;

  /// §6.2 ON/OFF signal from the last schedule; unknown coflows are ON
  /// (new == likely small, scheduled locally).
  bool isOn(coflow::CoflowId id) const;

  /// D-CLAS rate (bytes/s) the local uplink grants `id` right now:
  /// weighted share across queues, FIFO within the queue among this
  /// machine's active coflows.
  util::Rate rateFor(coflow::CoflowId id) const;

  std::uint64_t lastEpoch() const { return last_epoch_.load(std::memory_order_relaxed); }
  bool connected() const { return connected_.load(std::memory_order_relaxed); }

 private:
  void sendHello();
  void sendSizeReport();
  void scheduleTick();
  void scheduleReconnect();
  bool tryConnect();
  void onMessage(net::Buffer& payload);

  DaemonConfig config_;
  net::EventLoop loop_;
  std::unique_ptr<net::Connection> connection_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> last_epoch_{0};

  mutable std::mutex mutex_;
  std::unordered_map<coflow::CoflowId, util::Bytes> local_sent_;
  std::unordered_map<coflow::CoflowId, int> active_writers_;
  std::unordered_map<coflow::CoflowId, std::int32_t> queue_of_;
  std::unordered_map<coflow::CoflowId, bool> on_;
  std::vector<net::ScheduleEntry> schedule_;
};

}  // namespace aalo::runtime
