// Monotonic fault-tolerance counters (§3.2 hardening).
//
// Every control-plane component (Coordinator, Daemon, AaloClient) owns one
// RobustnessStats instance and bumps the counters relevant to it. Counters
// only ever grow, so tests can assert on behavior ("the daemon went stale
// exactly once", "the client reconnected") instead of sleeping and hoping.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

namespace aalo::runtime {

struct RobustnessStats {
  /// Sharded relaxed-atomic counter (obs layer); same fetch_add/load
  /// surface the call sites always used, now false-sharing-free and
  /// attachable to an obs::Registry (see runtime/metrics.h).
  using Counter = obs::Counter;

  // Shared.
  Counter malformed_frames{0};  ///< Frames that failed to decode.

  // Coordinator.
  Counter daemons_evicted{0};       ///< Liveness timeouts (reports stopped).
  Counter one_way_evictions{0};     ///< Echoed epoch stuck: send path dead.
  Counter tombstones_collected{0};  ///< Unregister tombstones GC'd.
  Counter delta_broadcasts{0};      ///< kScheduleDelta frames sent (non-empty).
  Counter broadcasts_suppressed{0}; ///< Unchanged schedule: heartbeat only.
  Counter snapshot_broadcasts{0};   ///< Full kScheduleUpdate frames sent.
  Counter snapshot_requests{0};     ///< kSnapshotRequest frames honored.
  Counter failovers{0};                 ///< Standby promotions to primary.
  Counter follower_frames_applied{0};   ///< Broadcasts mirrored while standby.
  Counter broadcasts_coalesced{0};      ///< Broadcast skipped: peer queue full.
  Counter checkpoint_snapshots{0};      ///< Snapshot files written.
  Counter checkpoint_journal_records{0};///< Journal records appended.
  Counter checkpoint_restores{0};       ///< Successful snapshot+journal restores.
  Counter checkpoint_restore_failures{0};///< Corrupt/rejected checkpoint data.

  // Daemon.
  Counter reconnect_attempts{0};       ///< Dial attempts after a loss.
  Counter reconnects{0};               ///< Successful (re)connections.
  Counter stale_transitions{0};        ///< Entered local-only mode (§3.2).
  Counter stale_recoveries{0};         ///< Left local-only mode.
  Counter old_epoch_ignored{0};        ///< Dup/reordered broadcasts dropped.
  Counter completed_coflows_pruned{0}; ///< Local sizes GC'd after completion.
  Counter delta_reports{0};            ///< Changed-coflows-only size reports.
  Counter reports_suppressed{0};       ///< Empty reports not sent (keepalive pacing).
  Counter resync_reports{0};           ///< Full absolute size reports.
  Counter schedule_deltas_applied{0};  ///< kScheduleDelta frames applied.
  Counter schedule_gaps{0};            ///< Delta base_epoch mismatch: snapshot asked.
  Counter reports_shed{0};             ///< Reports skipped: send queue full.
  Counter stale_fence_ignored{0};      ///< Broadcasts from a deposed primary.
  Counter endpoint_failovers{0};       ///< Rotated to the next coordinator.

  // Client.
  Counter rpc_retries{0};     ///< RPC attempts beyond the first.
  Counter rpc_reconnects{0};  ///< Control connections re-established.

  RobustnessStats() = default;
  RobustnessStats(const RobustnessStats&) = delete;
  RobustnessStats& operator=(const RobustnessStats&) = delete;
};

}  // namespace aalo::runtime
