#include "runtime/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <vector>

#include "net/buffer.h"
#include "net/protocol.h"
#include "util/log.h"

namespace aalo::runtime {

namespace {

void writeAllBlocking(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE for the retry path to handle,
    // not a SIGPIPE that kills the application.
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    throw std::system_error(errno, std::generic_category(), "write");
  }
}

void sendFrameBlocking(int fd, const net::Message& message) {
  net::Buffer payload;
  net::encodeMessage(message, payload);
  net::Buffer frame;
  frame.putU32(static_cast<std::uint32_t>(payload.readableBytes()));
  frame.append(payload.readable());
  writeAllBlocking(fd, frame.peek(), frame.readableBytes());
}

net::Message readFrameBlocking(int fd, int timeout_ms) {
  net::Buffer in;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  auto needBytes = [&](std::size_t n) {
    while (in.readableBytes() < n) {
      if (std::chrono::steady_clock::now() > deadline) {
        throw std::runtime_error("AaloClient: RPC timeout");
      }
      std::uint8_t* area = in.writableArea(4096);
      const ssize_t got = ::read(fd, area, 4096);
      if (got > 0) {
        in.commitWrite(static_cast<std::size_t>(got));
        continue;
      }
      if (got == 0) throw std::runtime_error("AaloClient: coordinator closed");
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLIN, 0};
        ::poll(&pfd, 1, 50);
        continue;
      }
      throw std::system_error(errno, std::generic_category(), "read");
    }
  };
  needBytes(4);
  const std::uint32_t len = in.getU32();
  needBytes(len);
  net::Buffer payload;
  payload.append(in.peek(), len);
  in.consume(len);
  return net::decodeMessage(payload);
}

}  // namespace

AaloClient::AaloClient(std::uint16_t coordinator_port)
    : AaloClient(ClientConfig{.coordinator_port = coordinator_port}) {}

AaloClient::AaloClient(ClientConfig config) : config_(std::move(config)) {
  ensureConnected();
}

void AaloClient::ensureConnected() {
  if (fd_.valid()) return;
  fd_ = net::connectTcp(config_.coordinator_port, /*non_blocking=*/true);
  if (next_request_ > 1) {
    // Not the initial dial: the control connection died and came back.
    stats_.rpc_reconnects.fetch_add(1, std::memory_order_relaxed);
  }
}

net::Message AaloClient::call(const net::Message& request, bool expect_reply) {
  const int attempts = std::max(config_.max_rpc_attempts, 1);
  util::Seconds backoff = config_.retry_backoff;
  for (int attempt = 0;; ++attempt) {
    try {
      ensureConnected();
      sendFrameBlocking(fd_.get(), request);
      if (!expect_reply) return {};
      return readFrameBlocking(fd_.get(), config_.rpc_timeout_ms);
    } catch (const std::exception& e) {
      // Broken pipe, reset, timeout, or refused redial: tear down and
      // retry over a fresh connection — a restarting coordinator should
      // be invisible to the application (§3.2).
      fd_.reset();
      if (attempt + 1 >= attempts) throw;
      stats_.rpc_retries.fetch_add(1, std::memory_order_relaxed);
      AALO_LOG_WARN << "AaloClient: RPC attempt " << attempt + 1 << " failed ("
                    << e.what() << "); retrying";
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * 2, config_.retry_max_backoff);
    }
  }
}

coflow::CoflowId AaloClient::registerCoflow(
    std::span<const coflow::CoflowId> parents) {
  net::Message request;
  request.type = net::MessageType::kRegisterCoflow;
  request.request_id = next_request_++;
  request.parents.assign(parents.begin(), parents.end());
  const net::Message reply = call(request, /*expect_reply=*/true);
  if (reply.type != net::MessageType::kRegisterReply ||
      reply.request_id != request.request_id) {
    throw std::runtime_error("AaloClient: unexpected register reply");
  }
  return reply.coflow;
}

void AaloClient::unregisterCoflow(coflow::CoflowId id) {
  net::Message request;
  request.type = net::MessageType::kUnregisterCoflow;
  request.coflow = id;
  next_request_++;  // Not echoed, but keeps reconnect accounting honest.
  call(request, /*expect_reply=*/false);
}

ThrottledWriter::ThrottledWriter(int fd, coflow::CoflowId id, Daemon& daemon)
    : fd_(fd), id_(id), daemon_(daemon) {
  daemon_.writerActive(id_, true);
}

ThrottledWriter::~ThrottledWriter() { daemon_.writerActive(id_, false); }

void ThrottledWriter::writeAll(const void* data, std::size_t len) {
  writeAll(std::span<const std::uint8_t>(static_cast<const std::uint8_t*>(data), len));
}

void ThrottledWriter::writeAll(std::span<const std::uint8_t> data) {
  // Token-bucket pacing in chunks: before each chunk, ask the daemon for
  // the coflow's current rate and sleep just long enough to stay at it.
  constexpr std::size_t kChunk = 64 * 1024;
  std::size_t offset = 0;
  auto window_start = std::chrono::steady_clock::now();
  util::Bytes window_bytes = 0;
  while (offset < data.size()) {
    const util::Rate rate = daemon_.rateFor(id_);
    if (rate <= 0) {
      // No share right now (queue head is someone else): briefly yield,
      // then re-check — the schedule changes every Δ.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      window_start = std::chrono::steady_clock::now();
      window_bytes = 0;
      continue;
    }
    const std::size_t chunk = std::min(kChunk, data.size() - offset);
    if (std::isfinite(rate)) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        window_start)
              .count();
      const double ahead = (window_bytes + static_cast<double>(chunk)) / rate - elapsed;
      if (ahead > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
      }
      // Restart the pacing window occasionally so rate changes take
      // effect quickly.
      if (elapsed > 0.1) {
        window_start = std::chrono::steady_clock::now();
        window_bytes = 0;
      }
    }
    writeAllBlocking(fd_, data.data() + offset, chunk);
    daemon_.reportBytes(id_, static_cast<util::Bytes>(chunk));
    bytes_written_ += static_cast<util::Bytes>(chunk);
    window_bytes += static_cast<double>(chunk);
    offset += chunk;
  }
}

}  // namespace aalo::runtime
