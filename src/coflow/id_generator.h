// CoflowId generation (paper Pseudocode 2).
//
// Root coflows (no parents) get a fresh external id with internal part 0.
// A dependent coflow inherits its parents' external id and takes an
// internal id one larger than the maximum among its parents, which encodes
// the Finishes-Before partial order into a FIFO-comparable total order.
#pragma once

#include <cstdint>
#include <span>

#include "coflow/ids.h"

namespace aalo::coflow {

class CoflowIdGenerator {
 public:
  /// NEWCOFLOWID(nil, {}): fresh DAG; returns newId.0.
  CoflowId newRootId();

  /// NEWCOFLOWID(pId, P): child of `parents` (all in one DAG).
  /// Throws std::invalid_argument if parents is empty or parents span
  /// multiple DAGs (different external ids).
  CoflowId newChildId(std::span<const CoflowId> parents) const;

  std::int64_t nextExternal() const { return next_external_; }

  /// Never issue an external id below `next_external` again: a coordinator
  /// restored from a checkpoint (or a promoted standby that only mirrored
  /// the broadcast stream) must not re-issue ids already handed to
  /// clients. Monotone — a lower value is ignored.
  void advanceTo(std::int64_t next_external) {
    if (next_external > next_external_) next_external_ = next_external;
  }

 private:
  std::int64_t next_external_ = 0;
};

}  // namespace aalo::coflow
