// Identifiers for ports, flows, jobs, and coflows.
//
// CoflowId follows the paper's Pseudocode 2: an *external* component that
// uniquely identifies the DAG (job) a coflow belongs to, and an *internal*
// component that orders coflows within the same DAG so that dependent
// coflows are deprioritized during contention (§5.1).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace aalo::coflow {

/// Index of a machine uplink (ingress) or downlink (egress) on the fabric.
/// Ingress and egress ports are separate namespaces: both run 0..P-1.
using PortId = std::int32_t;

/// Dense per-simulation flow index.
using FlowId = std::int64_t;

/// Identifier of a job (one data-parallel DAG).
using JobId = std::int64_t;

/// Hierarchical coflow identifier, printed "external.internal" (e.g. 42.1).
struct CoflowId {
  std::int64_t external = 0;  ///< DAG identifier, FIFO-ordered by arrival.
  std::int32_t internal = 0;  ///< Dependency depth within the DAG; 0 = root.

  friend auto operator<=>(const CoflowId&, const CoflowId&) = default;

  std::string toString() const {
    return std::to_string(external) + "." + std::to_string(internal);
  }
};

/// FIFO comparison used within a D-CLAS queue: order by external id (job
/// arrival order) and break ties with the internal id so parents run
/// before their dependents (line 4 of Pseudocode 1).
struct CoflowIdFifoLess {
  bool operator()(const CoflowId& a, const CoflowId& b) const {
    if (a.external != b.external) return a.external < b.external;
    return a.internal < b.internal;
  }
};

}  // namespace aalo::coflow

template <>
struct std::hash<aalo::coflow::CoflowId> {
  std::size_t operator()(const aalo::coflow::CoflowId& id) const noexcept {
    const std::size_t h1 = std::hash<std::int64_t>{}(id.external);
    const std::size_t h2 = std::hash<std::int32_t>{}(id.internal);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};
