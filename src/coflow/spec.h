// Immutable workload descriptions: flows, coflows, jobs.
//
// A *spec* describes what a workload will do; the simulator owns the
// mutable runtime state. A coflow is a collection of parallel flows with
// distributed endpoints that completes only when all its flows complete.
// Jobs group coflows into a DAG with Starts-After (barrier) and
// Finishes-Before (pipelined) dependencies (§5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "coflow/ids.h"
#include "util/units.h"

namespace aalo::coflow {

/// One point-to-point transfer inside a coflow.
struct FlowSpec {
  PortId src = 0;  ///< Ingress port (sender machine uplink).
  PortId dst = 0;  ///< Egress port (receiver machine downlink).
  util::Bytes bytes = 0;
  /// Delay, relative to the coflow's start, before this flow exists at all.
  /// Wave w of a multi-wave stage gives its flows offset w * waveGap; task
  /// restarts and speculative copies appear the same way (§5.2).
  util::Seconds start_offset = 0;
};

struct CoflowSpec {
  CoflowId id;
  /// Earliest time the coflow may start, relative to its job's arrival.
  util::Seconds arrival_offset = 0;
  std::vector<FlowSpec> flows;
  /// Barrier parents: this coflow cannot *start* before they finish.
  std::vector<CoflowId> starts_after;
  /// Pipelined parents: this coflow may run concurrently with them but
  /// cannot *finish* before they do.
  std::vector<CoflowId> finishes_before;
  /// Completion deadline relative to the coflow's release (0 = none).
  /// Met iff cct() <= deadline. Deadline-aware schedulers (dcoflow) may
  /// reject coflows that provably cannot meet theirs; everyone else
  /// ignores the field.
  util::Seconds deadline = 0;

  util::Bytes totalBytes() const;
  /// Length = size of the largest flow; width = number of flows (§7.1).
  util::Bytes maxFlowBytes() const;
  std::size_t width() const { return flows.size(); }
  /// Number of distinct start offsets, i.e. waves (Table 4).
  int waveCount() const;
};

struct JobSpec {
  JobId id = 0;
  util::Seconds arrival = 0;
  std::vector<CoflowSpec> coflows;
  /// Time the job spends outside communication (task compute). Used only
  /// for job-completion-time accounting (Table 2 bins, Fig 5), modeled as
  /// a serial compute phase alongside the communication phases.
  util::Seconds compute_time = 0;

  util::Bytes totalBytes() const;
};

/// A full experiment input: the fabric width plus all jobs.
struct Workload {
  int num_ports = 0;  ///< Fabric has num_ports ingress and egress ports.
  std::vector<JobSpec> jobs;

  std::size_t coflowCount() const;
  util::Bytes totalBytes() const;
  /// Throws std::invalid_argument if any flow references a port outside
  /// [0, num_ports) or has non-positive size, or ids repeat.
  void validate() const;
};

}  // namespace aalo::coflow
