#include "coflow/id_generator.h"

#include <algorithm>
#include <stdexcept>

namespace aalo::coflow {

CoflowId CoflowIdGenerator::newRootId() {
  return CoflowId{.external = next_external_++, .internal = 0};
}

CoflowId CoflowIdGenerator::newChildId(std::span<const CoflowId> parents) const {
  if (parents.empty()) {
    throw std::invalid_argument("newChildId: dependent coflow needs >=1 parent");
  }
  const std::int64_t external = parents.front().external;
  std::int32_t max_internal = 0;
  for (const CoflowId& p : parents) {
    if (p.external != external) {
      throw std::invalid_argument("newChildId: parents belong to different DAGs");
    }
    max_internal = std::max(max_internal, p.internal);
  }
  return CoflowId{.external = external, .internal = max_internal + 1};
}

}  // namespace aalo::coflow
