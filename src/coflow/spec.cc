#include "coflow/spec.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <unordered_set>

namespace aalo::coflow {

util::Bytes CoflowSpec::totalBytes() const {
  util::Bytes total = 0;
  for (const FlowSpec& f : flows) total += f.bytes;
  return total;
}

util::Bytes CoflowSpec::maxFlowBytes() const {
  util::Bytes m = 0;
  for (const FlowSpec& f : flows) m = std::max(m, f.bytes);
  return m;
}

int CoflowSpec::waveCount() const {
  std::set<util::Seconds> offsets;
  for (const FlowSpec& f : flows) offsets.insert(f.start_offset);
  return static_cast<int>(offsets.size());
}

util::Bytes JobSpec::totalBytes() const {
  util::Bytes total = 0;
  for (const CoflowSpec& c : coflows) total += c.totalBytes();
  return total;
}

std::size_t Workload::coflowCount() const {
  std::size_t n = 0;
  for (const JobSpec& j : jobs) n += j.coflows.size();
  return n;
}

util::Bytes Workload::totalBytes() const {
  util::Bytes total = 0;
  for (const JobSpec& j : jobs) total += j.totalBytes();
  return total;
}

void Workload::validate() const {
  if (num_ports <= 0) throw std::invalid_argument("Workload: num_ports must be positive");
  std::unordered_set<CoflowId> seen_coflows;
  std::unordered_set<JobId> seen_jobs;
  for (const JobSpec& job : jobs) {
    if (!seen_jobs.insert(job.id).second) {
      throw std::invalid_argument("Workload: duplicate job id " + std::to_string(job.id));
    }
    if (job.arrival < 0 || job.compute_time < 0) {
      throw std::invalid_argument("Workload: negative job arrival/compute time");
    }
    for (const CoflowSpec& c : job.coflows) {
      if (!seen_coflows.insert(c.id).second) {
        throw std::invalid_argument("Workload: duplicate coflow id " + c.id.toString());
      }
      if (c.flows.empty()) {
        throw std::invalid_argument("Workload: coflow " + c.id.toString() + " has no flows");
      }
      if (c.arrival_offset < 0) {
        throw std::invalid_argument("Workload: negative coflow arrival offset");
      }
      if (c.deadline < 0) {
        throw std::invalid_argument("Workload: negative deadline in coflow " +
                                    c.id.toString());
      }
      for (const FlowSpec& f : c.flows) {
        if (f.src < 0 || f.src >= num_ports || f.dst < 0 || f.dst >= num_ports) {
          throw std::invalid_argument("Workload: flow port out of range in coflow " +
                                      c.id.toString());
        }
        if (f.bytes <= 0) {
          throw std::invalid_argument("Workload: non-positive flow size in coflow " +
                                      c.id.toString());
        }
        if (f.start_offset < 0) {
          throw std::invalid_argument("Workload: negative flow start offset in coflow " +
                                      c.id.toString());
        }
      }
    }
    // Dependency references must stay inside the job.
    std::unordered_set<CoflowId> in_job;
    for (const CoflowSpec& c : job.coflows) in_job.insert(c.id);
    for (const CoflowSpec& c : job.coflows) {
      for (const CoflowId& p : c.starts_after) {
        if (!in_job.contains(p)) {
          throw std::invalid_argument("Workload: starts_after parent outside job for " +
                                      c.id.toString());
        }
      }
      for (const CoflowId& p : c.finishes_before) {
        if (!in_job.contains(p)) {
          throw std::invalid_argument("Workload: finishes_before parent outside job for " +
                                      c.id.toString());
        }
      }
    }
  }
}

}  // namespace aalo::coflow
