#include "sched/varys.h"

#include <algorithm>
#include <vector>

namespace aalo::sched {

util::Seconds VarysScheduler::effectiveBottleneck(const sim::SimView& view,
                                                  const ActiveCoflow& group) {
  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());
  const bool racks = view.fabric->hasRacks();
  const std::size_t num_racks =
      racks ? static_cast<std::size_t>(view.fabric->numRacks()) : 0;
  std::vector<util::Bytes> rem_in(ports, 0.0);
  std::vector<util::Bytes> rem_out(ports, 0.0);
  std::vector<util::Bytes> rem_up(num_racks, 0.0);
  std::vector<util::Bytes> rem_down(num_racks, 0.0);
  for (const std::size_t fi : group.flow_indices) {
    const sim::FlowState& f = view.flow(fi);
    const util::Bytes rem = std::max(0.0, f.size - f.sent);
    rem_in[static_cast<std::size_t>(f.src)] += rem;
    rem_out[static_cast<std::size_t>(f.dst)] += rem;
    if (racks && view.fabric->crossRack(f.src, f.dst)) {
      rem_up[static_cast<std::size_t>(view.fabric->rackOf(f.src))] += rem;
      rem_down[static_cast<std::size_t>(view.fabric->rackOf(f.dst))] += rem;
    }
  }
  util::Seconds gamma = 0;
  for (std::size_t p = 0; p < ports; ++p) {
    const auto pid = static_cast<coflow::PortId>(p);
    gamma = std::max(gamma, rem_in[p] / view.fabric->ingressCapacity(pid));
    gamma = std::max(gamma, rem_out[p] / view.fabric->egressCapacity(pid));
  }
  for (std::size_t r = 0; r < num_racks; ++r) {
    const int rack = static_cast<int>(r);
    gamma = std::max(gamma, rem_up[r] / view.fabric->rackUplinkCapacity(rack));
    gamma = std::max(gamma, rem_down[r] / view.fabric->rackDownlinkCapacity(rack));
  }
  return gamma;
}

bool VarysScheduler::admitted(const sim::SimView& view,
                              std::size_t coflow_index) const {
  return view.coflow(coflow_index).release_time + config_.admission_delay <=
         view.now + util::kEps;
}

util::Seconds VarysScheduler::nextWakeup(const sim::SimView& view) {
  if (config_.admission_delay <= 0) return sim::kInfTime;
  util::Seconds earliest = sim::kInfTime;
  for (const ActiveCoflow& group : activeGroups(view, groups_scratch_)) {
    if (!admitted(view, group.coflow_index)) {
      earliest = std::min(earliest, view.coflow(group.coflow_index).release_time +
                                        config_.admission_delay);
    }
  }
  return earliest;
}

void VarysScheduler::allocate(const sim::SimView& view, std::vector<util::Rate>& rates) {
  const std::span<const ActiveCoflow> all_groups = activeGroups(view, groups_scratch_);
  // Unadmitted coflows (still inside the centralized scheduling delay)
  // may not send at all.
  std::vector<const ActiveCoflow*> groups;
  groups.reserve(all_groups.size());
  for (const ActiveCoflow& g : all_groups) {
    if (admitted(view, g.coflow_index)) groups.push_back(&g);
  }

  // SEBF: smallest effective bottleneck first (ties by id for stability).
  std::vector<util::Seconds> gamma(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    gamma[g] = effectiveBottleneck(view, *groups[g]);
  }
  std::vector<std::size_t> order(groups.size());
  for (std::size_t g = 0; g < order.size(); ++g) order[g] = g;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (gamma[a] != gamma[b]) return gamma[a] < gamma[b];
    return view.coflow(groups[a]->coflow_index).id <
           view.coflow(groups[b]->coflow_index).id;
  });

  fabric::ResidualCapacity residual(*view.fabric);
  for (const std::size_t g : order) {
    allocateCoflowMadd(view, *groups[g], residual, rates, scratch_);
  }
  // Work conservation: MADD intentionally under-allocates; backfill
  // across all *admitted* flows.
  std::vector<std::size_t> admitted_flows;
  for (const ActiveCoflow* group : groups) {
    admitted_flows.insert(admitted_flows.end(), group->flow_indices.begin(),
                          group->flow_indices.end());
  }
  backfillMaxMin(view, admitted_flows, residual, rates, scratch_);
}

}  // namespace aalo::sched
