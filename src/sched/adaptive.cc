#include "sched/adaptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace aalo::sched {

AdaptiveDClasScheduler::AdaptiveDClasScheduler(AdaptiveConfig config)
    : config_(std::move(config)), inner_(config_.dclas) {
  if (config_.keep_fraction <= 0 || config_.keep_fraction >= 1) {
    throw std::invalid_argument("AdaptiveConfig: keep_fraction must be in (0, 1)");
  }
  if (config_.window == 0 || config_.refit_interval == 0) {
    throw std::invalid_argument("AdaptiveConfig: window/refit_interval must be > 0");
  }
}

void AdaptiveDClasScheduler::reset(const fabric::Fabric& fabric) {
  inner_.reset(fabric);
  inner_.setThresholds(config_.dclas.thresholds());
  completed_sizes_.clear();
  since_refit_ = 0;
  refits_ = 0;
}

void AdaptiveDClasScheduler::onCoflowFinished(const sim::SimView& view,
                                              std::size_t coflow_index) {
  // A completed coflow's attained service IS its size — the one moment a
  // non-clairvoyant scheduler knows it exactly.
  completed_sizes_.push_back(view.coflow(coflow_index).sent);
  while (completed_sizes_.size() > config_.window) completed_sizes_.pop_front();
  ++since_refit_;
  maybeRefit();
  inner_.onCoflowFinished(view, coflow_index);
}

void AdaptiveDClasScheduler::maybeRefit() {
  if (completed_sizes_.size() < config_.min_samples) return;
  if (since_refit_ < config_.refit_interval) return;
  since_refit_ = 0;

  std::vector<util::Bytes> sorted(completed_sizes_.begin(), completed_sizes_.end());
  std::sort(sorted.begin(), sorted.end());
  auto quantile = [&](double q) {
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };

  const int k = config_.dclas.num_queues;
  std::vector<util::Bytes> thresholds;
  double keep = config_.keep_fraction;
  util::Bytes last = 0;
  for (int i = 0; i + 1 < k; ++i) {
    util::Bytes t = quantile(1.0 - keep);
    // Enforce strictly ascending, strictly positive thresholds even when
    // the empirical distribution has point masses.
    t = std::max(t, std::max(last * 1.5, 1.0));
    thresholds.push_back(t);
    last = t;
    keep *= config_.keep_fraction;
  }
  inner_.setThresholds(std::move(thresholds));
  ++refits_;
}

void AdaptiveDClasScheduler::onFlowStarted(const sim::SimView& view,
                                           std::size_t flow_index) {
  inner_.onFlowStarted(view, flow_index);
}

void AdaptiveDClasScheduler::onFlowCompleted(const sim::SimView& view,
                                             std::size_t flow_index) {
  inner_.onFlowCompleted(view, flow_index);
}

std::uint64_t AdaptiveDClasScheduler::scheduleEpoch(const sim::SimView& view) {
  // Refits go through inner_.setThresholds, which bumps the inner epoch —
  // forwarding is safe even across threshold changes.
  return inner_.scheduleEpoch(view);
}

void AdaptiveDClasScheduler::allocate(const sim::SimView& view,
                                      std::vector<util::Rate>& rates) {
  inner_.allocate(view, rates);
}

util::Seconds AdaptiveDClasScheduler::nextWakeup(const sim::SimView& view) {
  return inner_.nextWakeup(view);
}

}  // namespace aalo::sched
