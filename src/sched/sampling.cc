#include "sched/sampling.h"

#include <algorithm>
#include <cmath>

namespace aalo::sched {

namespace {

/// FNV-1a over 64-bit words; scheduleEpoch hashes the priority
/// permutation with it.
std::uint64_t fnvMix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

void SamplingScheduler::reset(const fabric::Fabric& fabric) {
  (void)fabric;
  mature_order_.clear();
  immature_order_.clear();
  finish_log_.clear();
}

std::size_t SamplingScheduler::probeCount(std::size_t width) const {
  if (width == 0) return 0;
  const auto by_fraction = static_cast<std::size_t>(
      std::ceil(config_.probe_fraction * static_cast<double>(width)));
  return std::clamp(std::max(by_fraction, config_.min_probes), std::size_t{1},
                    width);
}

std::size_t SamplingScheduler::estimateTotal(const sim::SimView& view,
                                             std::size_t coflow_index,
                                             util::Bytes* out) const {
  const sim::CoflowState& c = view.coflow(coflow_index);
  const std::size_t width = c.flow_indices.size();
  const std::size_t k = probeCount(width);
  std::size_t done = 0;
  util::Bytes sum = 0;
  // Probes are the first k flows in spec order — a size-blind choice, so
  // picking them reveals nothing clairvoyant. A completed flow's `sent`
  // equals its size (the engine materializes it at completion), which is
  // exactly the attained-service information Aalo's daemons already
  // report.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t fi = c.flow_indices[i];
    if (view.flows->done[fi]) {
      ++done;
      sum += view.flows->sent_bytes[fi];
    }
  }
  if (out != nullptr && done > 0) {
    *out = sum / static_cast<double>(done) * static_cast<double>(width);
  }
  return done;
}

util::Seconds SamplingScheduler::estimatedBottleneck(const sim::SimView& view,
                                                     const ActiveCoflow& group,
                                                     util::Bytes est_total) {
  const sim::CoflowState& c = view.coflow(group.coflow_index);
  const std::size_t active = group.flow_indices.size();
  if (active == 0) return 0;
  // Remaining work under the estimate; per-coflow `sent` is maintained by
  // both engines every round, so this is reuse-safe (scheduler.h).
  const util::Bytes est_remaining = std::max(0.0, est_total - c.sent);
  const util::Bytes per_flow = est_remaining / static_cast<double>(active);
  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());
  port_in_scratch_.assign(ports, 0.0);
  port_out_scratch_.assign(ports, 0.0);
  for (std::size_t k = 0; k < active; ++k) {
    port_in_scratch_[static_cast<std::size_t>(group.srcs[k])] += per_flow;
    port_out_scratch_[static_cast<std::size_t>(group.dsts[k])] += per_flow;
  }
  util::Seconds gamma = 0;
  for (std::size_t p = 0; p < ports; ++p) {
    if (port_in_scratch_[p] == 0 && port_out_scratch_[p] == 0) continue;
    const auto pid = static_cast<coflow::PortId>(p);
    gamma = std::max(gamma, port_in_scratch_[p] / view.fabric->ingressCapacity(pid));
    gamma = std::max(gamma, port_out_scratch_[p] / view.fabric->egressCapacity(pid));
  }
  return gamma;
}

void SamplingScheduler::classify(const sim::SimView& view) {
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  mature_order_.clear();
  immature_order_.clear();
  gamma_scratch_.assign(groups.size(), 0.0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const sim::CoflowState& c = view.coflow(groups[g].coflow_index);
    const std::size_t k = probeCount(c.flow_indices.size());
    util::Bytes est = 0;
    if (estimateTotal(view, groups[g].coflow_index, &est) >= k) {
      gamma_scratch_[g] = estimatedBottleneck(view, groups[g], est);
      mature_order_.push_back(g);
    } else {
      immature_order_.push_back(g);
    }
  }
  // Mature: smallest estimated bottleneck first (SEBF on learned sizes).
  std::sort(mature_order_.begin(), mature_order_.end(),
            [&](std::size_t a, std::size_t b) {
              if (gamma_scratch_[a] != gamma_scratch_[b]) {
                return gamma_scratch_[a] < gamma_scratch_[b];
              }
              return view.coflow(groups[a].coflow_index).id <
                     view.coflow(groups[b].coflow_index).id;
            });
  // Immature: least attained service first (LAS) so probing stays fair.
  std::sort(immature_order_.begin(), immature_order_.end(),
            [&](std::size_t a, std::size_t b) {
              const sim::CoflowState& ca = view.coflow(groups[a].coflow_index);
              const sim::CoflowState& cb = view.coflow(groups[b].coflow_index);
              if (ca.sent != cb.sent) return ca.sent < cb.sent;
              return ca.id < cb.id;
            });
}

std::uint64_t SamplingScheduler::scheduleEpoch(const sim::SimView& view) {
  // The allocation is a pure function of (membership, the two priority
  // permutations): per-coflow max-min and the backfill read only
  // endpoints and capacities. Hashing those inputs makes reuse exact —
  // the rates can only change when this value (or the membership epoch)
  // does. Everything classify() reads is reuse-safe: per-coflow `sent`,
  // done flags (completions always bump the membership epoch), and
  // completed probes' materialized `sent`.
  classify(view);
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnvMix(h, view.active_index != nullptr ? view.active_index->epoch() : 0);
  h = fnvMix(h, 0x6d61747572656421ull);  // Section tag: mature order.
  for (const std::size_t g : mature_order_) {
    h = fnvMix(h, groups[g].coflow_index);
  }
  h = fnvMix(h, 0x696d6d6174757265ull);  // Section tag: immature order.
  for (const std::size_t g : immature_order_) {
    h = fnvMix(h, groups[g].coflow_index);
  }
  return h == 0 ? 1 : h;
}

void SamplingScheduler::allocate(const sim::SimView& view,
                                 std::vector<util::Rate>& rates) {
  classify(view);
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  fabric::ResidualCapacity residual(*view.fabric);

  // Splits `group` into its active probe flows (`probes == true`) or the
  // rest, reusing subgroup_scratch_. Probe membership = position < k in
  // the coflow's flow_indices, which are in arena push order (ascending),
  // so the first-k prefix is sorted and binary-searchable.
  auto subgroup = [&](const ActiveCoflow& group, bool probes) -> const ActiveCoflow& {
    const sim::CoflowState& c = view.coflow(group.coflow_index);
    const std::size_t k = probeCount(c.flow_indices.size());
    const auto probe_begin = c.flow_indices.begin();
    const auto probe_end = probe_begin + static_cast<std::ptrdiff_t>(k);
    subgroup_scratch_.coflow_index = group.coflow_index;
    subgroup_scratch_.flow_indices.clear();
    subgroup_scratch_.srcs.clear();
    subgroup_scratch_.dsts.clear();
    for (std::size_t i = 0; i < group.flow_indices.size(); ++i) {
      const std::size_t fi = group.flow_indices[i];
      if (std::binary_search(probe_begin, probe_end, fi) == probes) {
        subgroup_scratch_.flow_indices.push_back(fi);
        subgroup_scratch_.srcs.push_back(group.srcs[i]);
        subgroup_scratch_.dsts.push_back(group.dsts[i]);
      }
    }
    return subgroup_scratch_;
  };

  // Pass 1 — probes of immature coflows, LAS order: finish them fast so
  // estimates mature early (the probe set is tiny, so this steals little
  // bandwidth from mature coflows).
  for (const std::size_t g : immature_order_) {
    allocateCoflowMaxMin(view, subgroup(groups[g], /*probes=*/true), residual,
                         rates, scratch_);
  }
  // Pass 2 — mature coflows, smallest estimated bottleneck first.
  for (const std::size_t g : mature_order_) {
    allocateCoflowMaxMin(view, groups[g], residual, rates, scratch_);
  }
  // Pass 3 — the immature coflows' remaining flows, LAS order.
  for (const std::size_t g : immature_order_) {
    allocateCoflowMaxMin(view, subgroup(groups[g], /*probes=*/false), residual,
                         rates, scratch_);
  }
  if (config_.work_conserving) {
    backfill_scratch_.assign(view.active_flows->begin(), view.active_flows->end());
    backfillMaxMin(view, backfill_scratch_, residual, rates, scratch_);
  }
}

util::Seconds SamplingScheduler::nextWakeup(const sim::SimView& view) {
  // Attained service moves the LAS ordering and estimated remaining moves
  // the SEBF ordering between membership events; re-decide each quantum.
  if (view.active_flows->empty()) return sim::kInfTime;
  return view.now + config_.quantum;
}

void SamplingScheduler::onCoflowFinished(const sim::SimView& view,
                                         std::size_t coflow_index) {
  const sim::CoflowState& c = view.coflow(coflow_index);
  SamplingEstimate rec;
  rec.id = c.id;
  rec.actual = c.sent;
  util::Bytes est = 0;
  const std::size_t done = estimateTotal(view, coflow_index, &est);
  rec.mature = done >= probeCount(c.flow_indices.size());
  rec.estimated = done > 0 ? est : 0;
  finish_log_.push_back(rec);
  if (telemetry_ != nullptr) telemetry_->finishes.push_back(rec);
}

}  // namespace aalo::sched
