// Offline lower bound on total CCT (LP-relaxation style).
//
// Treats the fabric as 2P independent machines (each ingress and egress
// port) and relaxes the coflow-scheduling instance onto each machine as a
// single-machine preemptive total-completion-time problem — the
// relaxation behind the concurrent-open-shop LP bounds of
// Shafiee-Ghaderi (and the dual-fitting analysis already used by
// sched/offline_opt's 2-approximation). On one machine with release
// dates, preemptive SRPT is *exactly* optimal for sum of completion
// times, so
//
//   sum_c CCT_c  >=  max( sum_c iso_c ,
//                         max_m [ SRPT_m + sum_{c not on m} iso_c ] )
//
// where iso_c is coflow c's isolated completion time (its best possible
// CCT with the whole fabric to itself) and SRPT_m is the optimal sum of
// (C_j - r_j) for the per-coflow loads on machine m. Coflows whose
// release depends on a Starts-After barrier contribute their iso term
// only (their release instant is schedule-dependent); Finishes-Before
// edges and rack constraints can only increase real CCTs, so dropping
// them keeps the bound sound. Per-flow bytes are discounted by the
// engine's completion slack (flows snap to done slightly early) so the
// bound stays below every achievable fluid schedule.
//
// This is an *offline metric*, not a scheduler: experiments report each
// discipline's distance from the bound (achieved / bound >= 1).
#pragma once

#include <cstddef>

#include "coflow/spec.h"
#include "fabric/fabric.h"
#include "util/units.h"

namespace aalo::sched {

struct LpBoundResult {
  /// The lower bound itself: no schedule can sum CCTs below this.
  util::Seconds total_cct = 0;
  /// The aggregate-isolation term (sum of per-coflow isolated times).
  util::Seconds isolation_total = 0;
  /// The best single-machine SRPT term; total_cct = max of the two.
  util::Seconds best_machine = 0;
  std::size_t num_coflows = 0;
};

/// Computes the bound for `workload` on a fabric described by `config`
/// (racks, if any, are ignored — they only tighten real schedules).
LpBoundResult computeCctLowerBound(const coflow::Workload& workload,
                                   const fabric::FabricConfig& config);

/// Distance from the bound: achieved / bound. 1.0 when the bound is zero
/// (empty workloads). Values below 1 - 1e-6 indicate a bug in either the
/// engine or the bound — tests assert they never occur.
double boundRatio(util::Seconds achieved_total_cct, const LpBoundResult& bound);

}  // namespace aalo::sched
