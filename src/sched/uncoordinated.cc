#include "sched/uncoordinated.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "coflow/ids.h"

namespace aalo::sched {

UncoordinatedDClasScheduler::UncoordinatedDClasScheduler(DClasConfig config,
                                                         util::Seconds quantum)
    : config_(std::move(config)), quantum_(quantum) {
  thresholds_ = config_.thresholds();
}

void UncoordinatedDClasScheduler::allocate(const sim::SimView& view,
                                           std::vector<util::Rate>& rates) {
  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());
  const int k = static_cast<int>(thresholds_.size()) + 1;

  // Per-port view: coflows with their local attained service and flows.
  struct PortCoflow {
    std::size_t coflow_index;
    util::Bytes local_sent = 0;
    std::vector<std::size_t> flow_indices;
  };
  std::vector<std::vector<PortCoflow>> per_port(ports);
  std::vector<std::unordered_map<std::size_t, std::size_t>> slot(ports);
  for (const std::size_t fi : *view.active_flows) {
    const sim::FlowState& f = view.flow(fi);
    const auto p = static_cast<std::size_t>(f.src);
    auto [it, inserted] = slot[p].try_emplace(f.coflow_index, per_port[p].size());
    if (inserted) per_port[p].push_back(PortCoflow{f.coflow_index, 0, {}});
    per_port[p][it->second].flow_indices.push_back(fi);
  }
  for (const ActiveCoflow& group : activeGroups(view, groups_scratch_)) {
    const sim::CoflowState& c = view.coflow(group.coflow_index);
    for (const std::size_t fi : c.flow_indices) {
      const sim::FlowState& f = view.flow(fi);
      if (!f.started || f.sent <= 0) continue;
      const auto p = static_cast<std::size_t>(f.src);
      const auto it = slot[p].find(group.coflow_index);
      if (it != slot[p].end()) per_port[p][it->second].local_sent += f.sent;
    }
  }

  // Each port independently: local queues, FIFO inside, weighted across.
  // Flow weights are computed per port, then one global water-filling pass
  // resolves egress contention.
  std::vector<fabric::Demand>& demands = scratch_.demands;
  demands.clear();
  std::vector<std::size_t> chosen;
  const coflow::CoflowIdFifoLess fifo_less;
  for (std::size_t p = 0; p < ports; ++p) {
    auto& queue_view = per_port[p];
    if (queue_view.empty()) continue;
    std::vector<std::vector<const PortCoflow*>> queues(static_cast<std::size_t>(k));
    for (const PortCoflow& pc : queue_view) {
      int q = 0;
      while (q < static_cast<int>(thresholds_.size()) &&
             pc.local_sent >= thresholds_[static_cast<std::size_t>(q)]) {
        ++q;
      }
      queues[static_cast<std::size_t>(q)].push_back(&pc);
    }
    double total_weight = 0;
    for (int q = 0; q < k; ++q) {
      if (!queues[static_cast<std::size_t>(q)].empty()) {
        total_weight += config_.queueWeight(q);
      }
    }
    for (int q = 0; q < k; ++q) {
      auto& members = queues[static_cast<std::size_t>(q)];
      if (members.empty()) continue;
      // FIFO: only the queue's locally-first coflow sends.
      const PortCoflow* head = *std::min_element(
          members.begin(), members.end(),
          [&](const PortCoflow* a, const PortCoflow* b) {
            return fifo_less(view.coflow(a->coflow_index).id,
                             view.coflow(b->coflow_index).id);
          });
      const double share = config_.queueWeight(q) / total_weight;
      // The head's flows split the queue's port share equally.
      const double flow_weight =
          share / static_cast<double>(head->flow_indices.size());
      for (const std::size_t fi : head->flow_indices) {
        const sim::FlowState& f = view.flow(fi);
        demands.push_back(fabric::Demand{f.src, f.dst, flow_weight, fabric::kUncapped});
        chosen.push_back(fi);
      }
    }
  }

  fabric::ResidualCapacity residual(*view.fabric);
  const std::vector<util::Rate>& shares =
      fabric::maxMinAllocate(demands, residual, scratch_);
  for (std::size_t i = 0; i < chosen.size(); ++i) rates[chosen[i]] += shares[i];
  // Work conservation, as the local daemons would do with TCP underneath.
  backfillMaxMin(view, *view.active_flows, residual, rates, scratch_);
}

util::Seconds UncoordinatedDClasScheduler::nextWakeup(const sim::SimView& view) {
  return view.now + quantum_;
}

}  // namespace aalo::sched
