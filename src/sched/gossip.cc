#include "sched/gossip.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "coflow/ids.h"

namespace aalo::sched {

GossipDClasScheduler::GossipDClasScheduler(GossipConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  thresholds_ = config_.dclas.thresholds();
  if (config_.round_interval <= 0) {
    throw std::invalid_argument("GossipConfig: round_interval must be positive");
  }
  if (config_.exchanges_per_round < 1) {
    throw std::invalid_argument("GossipConfig: exchanges_per_round must be >= 1");
  }
}

void GossipDClasScheduler::reset(const fabric::Fabric& fabric) {
  num_ports_ = fabric.numPorts();
  mass_.assign(static_cast<std::size_t>(num_ports_), {});
  credited_.clear();
  last_gossip_ = 0;
  rng_ = util::Rng(config_.seed);
}

void GossipDClasScheduler::onCoflowFinished(const sim::SimView& view,
                                            std::size_t coflow_index) {
  (void)view;
  for (auto& port_mass : mass_) port_mass.erase(coflow_index);
  // credited_ entries of its flows are dead weight but harmless; they are
  // cleared on reset. (Flow indices are unique per run.)
  (void)coflow_index;
}

void GossipDClasScheduler::creditLocalBytes(const sim::SimView& view) {
  // Add newly sent bytes into the sending port's mass so the global
  // invariant sum_p mass_[p][c] == attained(c) holds.
  for (std::size_t ci = 0; ci < view.coflows->size(); ++ci) {
    const sim::CoflowState& c = view.coflow(ci);
    if (!c.released || c.done) continue;
    for (const std::size_t fi : c.flow_indices) {
      const sim::FlowState& f = view.flow(fi);
      if (!f.started || f.sent <= 0) continue;
      util::Bytes& seen = credited_[fi];
      if (f.sent > seen) {
        mass_[static_cast<std::size_t>(f.src)][ci] += f.sent - seen;
        seen = f.sent;
      }
    }
  }
}

void GossipDClasScheduler::runGossipRounds(util::Seconds now) {
  while (last_gossip_ + config_.round_interval <= now + util::kEps) {
    last_gossip_ += config_.round_interval;
    for (int e = 0; e < config_.exchanges_per_round; ++e) {
      // Random perfect matching of ports; each pair averages its masses.
      std::vector<std::size_t> ports(static_cast<std::size_t>(num_ports_));
      for (std::size_t p = 0; p < ports.size(); ++p) ports[p] = p;
      rng_.shuffle(ports);
      for (std::size_t i = 0; i + 1 < ports.size(); i += 2) {
        auto& a = mass_[ports[i]];
        auto& b = mass_[ports[i + 1]];
        // Union of keys, then average.
        for (auto& [ci, bytes] : a) {
          const auto it = b.find(ci);
          const util::Bytes other = it == b.end() ? 0.0 : it->second;
          const util::Bytes avg = (bytes + other) / 2;
          bytes = avg;
          b[ci] = avg;
        }
        for (auto& [ci, bytes] : b) {
          if (!a.contains(ci)) {
            const util::Bytes avg = bytes / 2;
            bytes = avg;
            a[ci] = avg;
          }
        }
      }
    }
  }
}

util::Bytes GossipDClasScheduler::estimate(int port, std::size_t coflow_index) const {
  const auto& port_mass = mass_[static_cast<std::size_t>(port)];
  const auto it = port_mass.find(coflow_index);
  return it == port_mass.end()
             ? 0.0
             : it->second * static_cast<double>(num_ports_);
}

void GossipDClasScheduler::allocate(const sim::SimView& view,
                                    std::vector<util::Rate>& rates) {
  creditLocalBytes(view);
  runGossipRounds(view.now);

  // Per-port D-CLAS on the gossip estimates (mirrors the uncoordinated
  // scheduler, but with converging size knowledge).
  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());
  const int k = static_cast<int>(thresholds_.size()) + 1;
  struct PortCoflow {
    std::size_t coflow_index;
    std::vector<std::size_t> flow_indices;
  };
  std::vector<std::vector<PortCoflow>> per_port(ports);
  std::vector<std::unordered_map<std::size_t, std::size_t>> slot(ports);
  for (const std::size_t fi : *view.active_flows) {
    const sim::FlowState& f = view.flow(fi);
    const auto p = static_cast<std::size_t>(f.src);
    auto [it, inserted] = slot[p].try_emplace(f.coflow_index, per_port[p].size());
    if (inserted) per_port[p].push_back(PortCoflow{f.coflow_index, {}});
    per_port[p][it->second].flow_indices.push_back(fi);
  }

  const coflow::CoflowIdFifoLess fifo_less;
  std::vector<fabric::Demand>& demands = scratch_.demands;
  demands.clear();
  std::vector<std::size_t> chosen;
  for (std::size_t p = 0; p < ports; ++p) {
    auto& members = per_port[p];
    if (members.empty()) continue;
    std::vector<std::vector<const PortCoflow*>> queues(static_cast<std::size_t>(k));
    for (const PortCoflow& pc : members) {
      const util::Bytes est = estimate(static_cast<int>(p), pc.coflow_index);
      int q = 0;
      while (q < static_cast<int>(thresholds_.size()) &&
             est >= thresholds_[static_cast<std::size_t>(q)]) {
        ++q;
      }
      queues[static_cast<std::size_t>(q)].push_back(&pc);
    }
    double total_weight = 0;
    for (int q = 0; q < k; ++q) {
      if (!queues[static_cast<std::size_t>(q)].empty()) {
        total_weight += config_.dclas.queueWeight(q);
      }
    }
    for (int q = 0; q < k; ++q) {
      auto& qmembers = queues[static_cast<std::size_t>(q)];
      if (qmembers.empty()) continue;
      const PortCoflow* head = *std::min_element(
          qmembers.begin(), qmembers.end(),
          [&](const PortCoflow* a, const PortCoflow* b) {
            return fifo_less(view.coflow(a->coflow_index).id,
                             view.coflow(b->coflow_index).id);
          });
      const double share = config_.dclas.queueWeight(q) / total_weight;
      const double flow_weight =
          share / static_cast<double>(head->flow_indices.size());
      for (const std::size_t fi : head->flow_indices) {
        const sim::FlowState& f = view.flow(fi);
        demands.push_back(fabric::Demand{f.src, f.dst, flow_weight, fabric::kUncapped});
        chosen.push_back(fi);
      }
    }
  }

  fabric::ResidualCapacity residual(*view.fabric);
  const std::vector<util::Rate>& shares =
      fabric::maxMinAllocate(demands, residual, scratch_);
  for (std::size_t i = 0; i < chosen.size(); ++i) rates[chosen[i]] += shares[i];
  backfillMaxMin(view, *view.active_flows, residual, rates, scratch_);
}

util::Seconds GossipDClasScheduler::nextWakeup(const sim::SimView& view) {
  return last_gossip_ + config_.round_interval > view.now + util::kEps
             ? last_gossip_ + config_.round_interval
             : view.now + config_.round_interval;
}

}  // namespace aalo::sched
