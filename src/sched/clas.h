// Continuous (non-discretized) Coflow-Aware Least-Attained Service.
//
// Priority strictly decreases with the coflow's globally attained service;
// coflows with (numerically) equal attained service share fairly. For
// identical coflows this degenerates into byte-by-byte round-robin — the
// behaviour Appendix B analyses and D-CLAS's discretization avoids.
#pragma once

#include "sched/common.h"

namespace aalo::sched {

struct ClasConfig {
  /// Attained-service gap below which coflows count as tied and share.
  util::Bytes tie_window = 1 * util::kKB;
  /// Safety re-allocation quantum: ties form as lagging coflows catch up;
  /// the scheduler also predicts catch-up times, so this is a backstop.
  util::Seconds quantum = 0.5;
};

class ContinuousClasScheduler final : public sim::Scheduler {
 public:
  explicit ContinuousClasScheduler(ClasConfig config = {});

  std::string name() const override { return "clas-continuous"; }

  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  util::Seconds nextWakeup(const sim::SimView& view) override;

 private:
  ClasConfig config_;
  fabric::MaxMinScratch scratch_;
  std::vector<ActiveCoflow> groups_scratch_;
  std::vector<const ActiveCoflow*> order_;
};

}  // namespace aalo::sched
