// Varys — the clairvoyant baseline (Chowdhury, Zhong, Stoica, SIGCOMM'14).
//
// Smallest-Effective-Bottleneck-First (SEBF) ordering with MADD rate
// assignment: coflows are sorted by the time their bottleneck port needs
// to drain the remaining bytes; each coflow's flows are paced to finish
// together at that bottleneck time, and leftover bandwidth is backfilled.
// Requires complete knowledge of flow sizes — the assumption Aalo drops.
#pragma once

#include "sched/common.h"

namespace aalo::sched {

struct VarysConfig {
  /// Centralized admission overhead: a coflow's flows stay gated until
  /// this long after release (Varys must compute explicit rates before
  /// anything may send — the cost §7.2 attributes to it for tiny
  /// coflows). 0 models an idealized, overhead-free Varys.
  util::Seconds admission_delay = 0;
};

class VarysScheduler final : public sim::Scheduler {
 public:
  VarysScheduler() = default;
  explicit VarysScheduler(VarysConfig config) : config_(config) {}

  std::string name() const override { return "varys-sebf"; }

  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;

  util::Seconds nextWakeup(const sim::SimView& view) override;

  /// Effective bottleneck (seconds) of a coflow's started flows against
  /// the full fabric. Exposed for tests.
  static util::Seconds effectiveBottleneck(const sim::SimView& view,
                                           const ActiveCoflow& group);

 private:
  bool admitted(const sim::SimView& view, std::size_t coflow_index) const;

  VarysConfig config_;
  fabric::MaxMinScratch scratch_;
  std::vector<ActiveCoflow> groups_scratch_;
};

}  // namespace aalo::sched
