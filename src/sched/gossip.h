// Decentralized Aalo via gossip aggregation — the §8 "Decentralizing
// Aalo" direction ("approximate aggregation schemes like Push-Sum can be
// good starting points").
//
// There is no coordinator. Each ingress-port daemon keeps a per-coflow
// mass x_p(c), credited locally as the port sends bytes; the invariant
// sum_p x_p(c) == total attained service holds throughout. Every gossip
// round (one per decision quantum) random daemon pairs average their
// masses — Push-Sum with uniform weights — so each daemon's estimate of
// the global size, P * x_p(c), converges geometrically to the truth. The
// daemons then run D-CLAS locally on those estimates.
//
// This interpolates between the coordinated scheduler (instant averaging)
// and the uncoordinated one (no averaging): more gossip rounds per unit
// time = better estimates = closer to coordinated Aalo.
#pragma once

#include <unordered_map>
#include <vector>

#include "sched/common.h"
#include "sched/dclas.h"
#include "util/rng.h"

namespace aalo::sched {

struct GossipConfig {
  DClasConfig dclas;  ///< Queue structure (sync_interval is ignored).
  /// Simulated time between gossip rounds (also the decision quantum).
  util::Seconds round_interval = 0.5;
  /// Random pairings drawn per gossip round (P/2 pairs each).
  int exchanges_per_round = 1;
  std::uint64_t seed = 99;
};

class GossipDClasScheduler final : public sim::Scheduler {
 public:
  explicit GossipDClasScheduler(GossipConfig config = {});

  std::string name() const override { return "aalo-gossip"; }

  void reset(const fabric::Fabric& fabric) override;
  void onCoflowFinished(const sim::SimView& view, std::size_t coflow_index) override;
  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  util::Seconds nextWakeup(const sim::SimView& view) override;

  /// Daemon p's current estimate of coflow c's global attained service.
  util::Bytes estimate(int port, std::size_t coflow_index) const;

 private:
  void creditLocalBytes(const sim::SimView& view);
  void runGossipRounds(util::Seconds now);

  GossipConfig config_;
  std::vector<util::Bytes> thresholds_;
  int num_ports_ = 0;
  util::Rng rng_;
  /// mass_[p][c]: daemon p's share of coflow c's total attained service.
  std::vector<std::unordered_map<std::size_t, util::Bytes>> mass_;
  /// Bytes of each flow already credited into mass_.
  std::unordered_map<std::size_t, util::Bytes> credited_;
  util::Seconds last_gossip_ = 0;
  fabric::MaxMinScratch scratch_;
};

}  // namespace aalo::sched
