#include "sched/las.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace aalo::sched {

DecentralizedLasScheduler::DecentralizedLasScheduler(LasConfig config)
    : config_(config) {}

void DecentralizedLasScheduler::allocate(const sim::SimView& view,
                                         std::vector<util::Rate>& rates) {
  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());

  // Locally attained service per (ingress port, coflow): only the bytes a
  // daemon can see leave through its own uplink.
  std::vector<std::unordered_map<std::size_t, util::Bytes>> local_sent(ports);
  std::vector<std::vector<std::size_t>> port_flows(ports);
  for (const std::size_t fi : *view.active_flows) {
    const sim::FlowState& f = view.flow(fi);
    const auto p = static_cast<std::size_t>(f.src);
    local_sent[p][f.coflow_index];  // Ensure the entry exists even at 0.
    port_flows[p].push_back(fi);
  }
  // Attained service includes already-finished flows of still-active
  // coflows: a daemon remembers everything the coflow sent via its uplink.
  for (const ActiveCoflow& group : activeGroups(view, groups_scratch_)) {
    const sim::CoflowState& c = view.coflow(group.coflow_index);
    for (const std::size_t fi : c.flow_indices) {
      const sim::FlowState& f = view.flow(fi);
      if (!f.started || f.sent <= 0) continue;
      const auto p = static_cast<std::size_t>(f.src);
      auto it = local_sent[p].find(group.coflow_index);
      if (it != local_sent[p].end()) it->second += f.sent;
    }
  }

  // Each port independently selects its least-locally-attained coflow(s).
  scratch_.demands.clear();
  std::vector<std::size_t> chosen_flows;
  for (std::size_t p = 0; p < ports; ++p) {
    if (port_flows[p].empty()) continue;
    util::Bytes min_attained = std::numeric_limits<util::Bytes>::infinity();
    for (const auto& [ci, bytes] : local_sent[p]) {
      min_attained = std::min(min_attained, bytes);
    }
    for (const std::size_t fi : port_flows[p]) {
      const sim::FlowState& f = view.flow(fi);
      if (local_sent[p].at(f.coflow_index) - min_attained <= config_.tie_window) {
        scratch_.demands.push_back(fabric::Demand{f.src, f.dst, 1.0, fabric::kUncapped});
        chosen_flows.push_back(fi);
      }
    }
  }

  fabric::ResidualCapacity residual(*view.fabric);
  const std::vector<util::Rate>& shares =
      fabric::maxMinAllocate(scratch_.demands, residual, scratch_);
  for (std::size_t k = 0; k < chosen_flows.size(); ++k) {
    rates[chosen_flows[k]] += shares[k];
  }
  if (config_.work_conserving) {
    backfillMaxMin(view, *view.active_flows, residual, rates, scratch_);
  }
}

util::Seconds DecentralizedLasScheduler::nextWakeup(const sim::SimView& view) {
  return view.now + config_.quantum;
}

}  // namespace aalo::sched
