#include "sched/dcoflow.h"

#include <algorithm>

namespace aalo::sched {

namespace {

std::uint64_t fnvMix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Sigma-order: earliest absolute deadline first; deadline-free coflows
/// (absoluteDeadline == kInfTime) sort last; ties by release, then id.
bool sigmaBefore(const sim::CoflowState& a, const sim::CoflowState& b) {
  const util::Seconds da = a.absoluteDeadline();
  const util::Seconds db = b.absoluteDeadline();
  if (da != db) return da < db;
  if (a.release_time != b.release_time) return a.release_time < b.release_time;
  return a.id < b.id;
}

/// Remaining bytes of one active flow (clairvoyant — dcoflow needs sizes
/// to test deadlines, like Varys needs them for SEBF).
util::Bytes remainingOf(const sim::SimView& view, std::size_t fi) {
  return std::max(0.0, view.flows->size_bytes[fi] - view.flows->sent_bytes[fi]);
}

}  // namespace

void DCoflowScheduler::reset(const fabric::Fabric& fabric) {
  (void)fabric;
  decided_.clear();
  admitted_.clear();
  log_.clear();
  rejected_ = 0;
  decision_version_ = 0;
}

void DCoflowScheduler::decideAdmissions(const sim::SimView& view) {
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  if (decided_.size() < view.coflows->size()) {
    decided_.resize(view.coflows->size(), 0);
    admitted_.resize(view.coflows->size(), 0);
  }
  candidate_scratch_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!decided_[groups[g].coflow_index]) candidate_scratch_.push_back(g);
  }
  // The common case: nothing new. Bail before touching any per-flow state
  // — on reused rounds per-flow `sent` may be stale, but a coflow's first
  // active round always bumps the membership epoch, so whenever
  // candidates exist the engine has materialized fresh state.
  if (candidate_scratch_.empty()) return;
  std::sort(candidate_scratch_.begin(), candidate_scratch_.end(),
            [&](std::size_t a, std::size_t b) {
              const sim::CoflowState& ca = view.coflow(groups[a].coflow_index);
              const sim::CoflowState& cb = view.coflow(groups[b].coflow_index);
              if (ca.release_time != cb.release_time) {
                return ca.release_time < cb.release_time;
              }
              return ca.id < cb.id;
            });

  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());
  for (const std::size_t cand : candidate_scratch_) {
    const std::size_t cand_ci = groups[cand].coflow_index;
    const sim::CoflowState& cand_state = view.coflow(cand_ci);

    // Tentative sigma-ordered list: currently admitted active coflows
    // plus the candidate (earlier candidates of this same round are
    // already in admitted_, so later ones see them).
    order_scratch_.clear();
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (g == cand || admitted_[groups[g].coflow_index]) {
        order_scratch_.push_back(g);
      }
    }
    std::sort(order_scratch_.begin(), order_scratch_.end(),
              [&](std::size_t a, std::size_t b) {
                return sigmaBefore(view.coflow(groups[a].coflow_index),
                                   view.coflow(groups[b].coflow_index));
              });

    // Walk the sigma order accumulating per-port remaining load. The
    // completion bound of the k-th coflow is the worst cumulative
    // load/capacity over all ports after its own load is added — every
    // byte of the prefix must cross that port before the k-th coflow can
    // finish under the sigma-order service discipline. Coflows *before*
    // the candidate keep their prefix (and thus their bound) unchanged,
    // so only the candidate and its successors are tested.
    cum_in_scratch_.assign(ports, 0.0);
    cum_out_scratch_.assign(ports, 0.0);
    util::Seconds worst = 0;
    bool ok = true;
    bool candidate_seen = false;
    util::Seconds cand_bound = view.now;
    for (const std::size_t g : order_scratch_) {
      const ActiveCoflow& group = groups[g];
      for (std::size_t k = 0; k < group.flow_indices.size(); ++k) {
        const util::Bytes rem = remainingOf(view, group.flow_indices[k]);
        const auto src = static_cast<std::size_t>(group.srcs[k]);
        const auto dst = static_cast<std::size_t>(group.dsts[k]);
        cum_in_scratch_[src] += rem;
        cum_out_scratch_[dst] += rem;
        worst = std::max(worst, cum_in_scratch_[src] /
                                    view.fabric->ingressCapacity(group.srcs[k]));
        worst = std::max(worst, cum_out_scratch_[dst] /
                                    view.fabric->egressCapacity(group.dsts[k]));
      }
      const util::Seconds bound =
          view.now + config_.admission_margin * worst;
      const sim::CoflowState& state = view.coflow(group.coflow_index);
      if (g == cand) {
        candidate_seen = true;
        cand_bound = bound;
      }
      if (candidate_seen && bound > state.absoluteDeadline() + util::kEps) {
        ok = false;
        break;
      }
    }

    decided_[cand_ci] = 1;
    admitted_[cand_ci] = ok ? 1 : 0;
    if (!ok) ++rejected_;
    ++decision_version_;
    AdmissionDecision d;
    d.id = cand_state.id;
    d.coflow_index = cand_ci;
    d.admitted = ok;
    d.bound = cand_bound;
    d.deadline_abs = cand_state.absoluteDeadline();
    d.decided_at = view.now;
    log_.push_back(d);
  }
}

std::uint64_t DCoflowScheduler::scheduleEpoch(const sim::SimView& view) {
  decideAdmissions(view);
  // Between membership changes the allocation is a pure function of the
  // admitted partition and the (frozen-at-release) sigma keys: per-coflow
  // max-min and the backfills read only endpoints and capacities. Folding
  // the decision version over the membership epoch therefore captures
  // every input the rates depend on.
  std::uint64_t h = fnvMix(0xcbf29ce484222325ull,
                           view.active_index != nullptr
                               ? view.active_index->epoch()
                               : 0);
  h = fnvMix(h, decision_version_);
  return h == 0 ? 1 : h;
}

void DCoflowScheduler::allocate(const sim::SimView& view,
                                std::vector<util::Rate>& rates) {
  decideAdmissions(view);
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);

  order_scratch_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (admitted_[groups[g].coflow_index]) order_scratch_.push_back(g);
  }
  std::sort(order_scratch_.begin(), order_scratch_.end(),
            [&](std::size_t a, std::size_t b) {
              return sigmaBefore(view.coflow(groups[a].coflow_index),
                                 view.coflow(groups[b].coflow_index));
            });

  fabric::ResidualCapacity residual(*view.fabric);
  for (const std::size_t g : order_scratch_) {
    allocateCoflowMaxMin(view, groups[g], residual, rates, scratch_);
  }
  if (config_.work_conserving) {
    flows_scratch_.clear();
    for (const std::size_t g : order_scratch_) {
      flows_scratch_.insert(flows_scratch_.end(), groups[g].flow_indices.begin(),
                            groups[g].flow_indices.end());
    }
    backfillMaxMin(view, flows_scratch_, residual, rates, scratch_);
  }
  // Background service for rejected coflows: strictly leftover capacity,
  // so they cannot delay anyone admitted, but they always make progress
  // and the run terminates.
  flows_scratch_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (!admitted_[groups[g].coflow_index]) {
      flows_scratch_.insert(flows_scratch_.end(), groups[g].flow_indices.begin(),
                            groups[g].flow_indices.end());
    }
  }
  if (!flows_scratch_.empty()) {
    backfillMaxMin(view, flows_scratch_, residual, rates, scratch_);
  }
}

}  // namespace aalo::sched
