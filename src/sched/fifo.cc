#include "sched/fifo.h"

#include <algorithm>

#include "coflow/ids.h"

namespace aalo::sched {

void FifoScheduler::allocate(const sim::SimView& view, std::vector<util::Rate>& rates) {
  std::vector<ActiveCoflow> groups = groupActiveByCoflow(view);
  const coflow::CoflowIdFifoLess fifo_less;
  std::sort(groups.begin(), groups.end(), [&](const ActiveCoflow& a, const ActiveCoflow& b) {
    const sim::CoflowState& ca = view.coflow(a.coflow_index);
    const sim::CoflowState& cb = view.coflow(b.coflow_index);
    if (ca.release_time != cb.release_time) return ca.release_time < cb.release_time;
    return fifo_less(ca.id, cb.id);
  });

  fabric::ResidualCapacity residual(*view.fabric);
  for (const ActiveCoflow& group : groups) {
    allocateCoflowMaxMin(view, group, residual, rates);
    if (!config_.work_conserving_spillover) break;  // Head only.
  }
}

}  // namespace aalo::sched
