#include "sched/fifo.h"

#include <algorithm>

#include "coflow/ids.h"

namespace aalo::sched {

void FifoScheduler::allocate(const sim::SimView& view, std::vector<util::Rate>& rates) {
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  const coflow::CoflowIdFifoLess fifo_less;
  order_.assign(groups.size(), nullptr);
  for (std::size_t g = 0; g < groups.size(); ++g) order_[g] = &groups[g];
  std::sort(order_.begin(), order_.end(),
            [&](const ActiveCoflow* a, const ActiveCoflow* b) {
              const sim::CoflowState& ca = view.coflow(a->coflow_index);
              const sim::CoflowState& cb = view.coflow(b->coflow_index);
              if (ca.release_time != cb.release_time) {
                return ca.release_time < cb.release_time;
              }
              return fifo_less(ca.id, cb.id);
            });

  fabric::ResidualCapacity residual(*view.fabric);
  for (const ActiveCoflow* group : order_) {
    allocateCoflowMaxMin(view, *group, residual, rates, scratch_);
    if (!config_.work_conserving_spillover) break;  // Head only.
  }
}

}  // namespace aalo::sched
