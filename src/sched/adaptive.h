// Adaptive queue thresholds — the §8 "Determining Optimal Queue
// Thresholds" future-work direction, implemented as online quantile
// tracking.
//
// D-CLAS's fixed exponential thresholds (10 MB x 10^i) are tuned for the
// Facebook-like heavy tail. When the workload's size scale shifts (say,
// every coflow is 100x larger), a fixed Q1^hi = 10 MB puts *everything*
// past the first queue almost immediately, wasting the FIFO fast path.
// This scheduler re-derives its thresholds from the empirical
// distribution of completed coflow sizes: after every `refit_interval`
// completions, threshold i becomes the (1 - keep_fraction^i)-quantile of
// the last `window` observed sizes — an exponentially spaced ladder in
// *probability* space, which adapts to any size scale while preserving
// D-CLAS's "few queues, exponentially bigger" structure.
#pragma once

#include <deque>

#include "sched/dclas.h"

namespace aalo::sched {

struct AdaptiveConfig {
  /// Underlying D-CLAS structure; its thresholds serve until enough
  /// completions have been observed.
  DClasConfig dclas;
  /// Sliding window of completed-coflow sizes used for quantiles.
  std::size_t window = 200;
  /// Refit thresholds after this many new completions.
  std::size_t refit_interval = 25;
  /// Minimum completions before the first refit.
  std::size_t min_samples = 30;
  /// Fraction of coflows intended to *outgrow* each successive queue:
  /// threshold i sits at the (1 - keep_fraction^(i+1))-quantile.
  double keep_fraction = 0.4;
};

class AdaptiveDClasScheduler final : public sim::Scheduler {
 public:
  explicit AdaptiveDClasScheduler(AdaptiveConfig config = {});

  std::string name() const override { return "aalo-adaptive"; }

  void reset(const fabric::Fabric& fabric) override;
  void onCoflowFinished(const sim::SimView& view, std::size_t coflow_index) override;
  void onFlowStarted(const sim::SimView& view, std::size_t flow_index) override;
  void onFlowCompleted(const sim::SimView& view, std::size_t flow_index) override;
  std::uint64_t scheduleEpoch(const sim::SimView& view) override;
  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  util::Seconds nextWakeup(const sim::SimView& view) override;

  /// Current thresholds (exposed for tests).
  const std::vector<util::Bytes>& thresholds() const { return inner_.thresholds(); }
  std::size_t refits() const { return refits_; }

 private:
  void maybeRefit();

  AdaptiveConfig config_;
  DClasScheduler inner_;
  std::deque<util::Bytes> completed_sizes_;
  std::size_t since_refit_ = 0;
  std::size_t refits_ = 0;
};

}  // namespace aalo::sched
