// Building blocks shared by the coflow schedulers.
#pragma once

#include <cstddef>
#include <vector>

#include "fabric/fabric.h"
#include "fabric/maxmin.h"
#include "sim/scheduler.h"
#include "util/units.h"

namespace aalo::sched {

/// A coflow together with its currently active (started, unfinished) flows.
struct ActiveCoflow {
  std::size_t coflow_index = 0;
  std::vector<std::size_t> flow_indices;
};

/// Groups view.active_flows by coflow. Order of the result follows first
/// appearance in active_flows; callers sort by their own discipline.
std::vector<ActiveCoflow> groupActiveByCoflow(const sim::SimView& view);

/// Gives `group`'s flows a max-min fair allocation of `residual` (equal
/// weights — line 6 of Pseudocode 1: no flow-size information), *adding*
/// to whatever `rates` already holds and consuming the residual.
void allocateCoflowMaxMin(const sim::SimView& view, const ActiveCoflow& group,
                          fabric::ResidualCapacity& residual,
                          std::vector<util::Rate>& rates);

/// Clairvoyant MADD (Varys): every active flow of `group` gets
/// remaining / Gamma where Gamma is the coflow's effective bottleneck
/// completion time against `residual` — all flows finish together, using
/// no more than necessary. No-op if the group has no remaining bytes.
void allocateCoflowMadd(const sim::SimView& view, const ActiveCoflow& group,
                        fabric::ResidualCapacity& residual,
                        std::vector<util::Rate>& rates);

/// Work conservation: distributes whatever `residual` still holds among
/// all of `flow_indices` max-min (equal weights), adding to `rates`.
void backfillMaxMin(const sim::SimView& view,
                    const std::vector<std::size_t>& flow_indices,
                    fabric::ResidualCapacity& residual,
                    std::vector<util::Rate>& rates);

/// Remaining bytes of a coflow's *started* flows (clairvoyant helper).
util::Bytes remainingReleasedBytes(const sim::SimView& view, std::size_t coflow_index);

/// Aggregate current rate of a coflow's active flows (valid right after an
/// allocation round; used for wake-up prediction).
util::Rate coflowAggregateRate(const sim::SimView& view, const ActiveCoflow& group);

}  // namespace aalo::sched
