// Building blocks shared by the coflow schedulers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fabric/fabric.h"
#include "fabric/maxmin.h"
#include "sim/scheduler.h"
#include "util/units.h"

namespace aalo::sched {

/// A coflow together with its currently active (started, unfinished)
/// flows. Alias of the engine-maintained grouping type.
using ActiveCoflow = sim::ActiveGroup;

/// The active-coflow grouping for `view`: the engine-maintained
/// incremental index when present (free — no per-round rebuild), else
/// rebuilt into `scratch` (hand-assembled views in tests and benches).
/// Order of the result is deterministic but discipline-neutral; callers
/// that care sort by their own key.
std::span<const ActiveCoflow> activeGroups(const sim::SimView& view,
                                           std::vector<ActiveCoflow>& scratch);

/// Groups view.active_flows by coflow, rebuilding from scratch. Order of
/// the result follows first appearance in active_flows. Prefer
/// activeGroups() — this exists for the no-index fallback and tests.
std::vector<ActiveCoflow> groupActiveByCoflow(const sim::SimView& view);

/// Gives `group`'s flows a max-min fair allocation of `residual` (equal
/// weights — line 6 of Pseudocode 1: no flow-size information), *adding*
/// to whatever `rates` already holds and consuming the residual. All
/// temporaries live in `scratch`.
void allocateCoflowMaxMin(const sim::SimView& view, const ActiveCoflow& group,
                          fabric::ResidualCapacity& residual,
                          std::vector<util::Rate>& rates,
                          fabric::MaxMinScratch& scratch);

/// Clairvoyant MADD (Varys): every active flow of `group` gets
/// remaining / Gamma where Gamma is the coflow's effective bottleneck
/// completion time against `residual` — all flows finish together, using
/// no more than necessary. No-op if the group has no remaining bytes.
void allocateCoflowMadd(const sim::SimView& view, const ActiveCoflow& group,
                        fabric::ResidualCapacity& residual,
                        std::vector<util::Rate>& rates,
                        fabric::MaxMinScratch& scratch);

/// Work conservation: distributes whatever `residual` still holds among
/// all of `flow_indices` max-min (equal weights), adding to `rates`.
void backfillMaxMin(const sim::SimView& view,
                    const std::vector<std::size_t>& flow_indices,
                    fabric::ResidualCapacity& residual,
                    std::vector<util::Rate>& rates,
                    fabric::MaxMinScratch& scratch);

// Transient-scratch conveniences (tests / cold paths).
void allocateCoflowMaxMin(const sim::SimView& view, const ActiveCoflow& group,
                          fabric::ResidualCapacity& residual,
                          std::vector<util::Rate>& rates);
void allocateCoflowMadd(const sim::SimView& view, const ActiveCoflow& group,
                        fabric::ResidualCapacity& residual,
                        std::vector<util::Rate>& rates);
void backfillMaxMin(const sim::SimView& view,
                    const std::vector<std::size_t>& flow_indices,
                    fabric::ResidualCapacity& residual,
                    std::vector<util::Rate>& rates);

/// Remaining bytes of a coflow's *started* flows (clairvoyant helper).
util::Bytes remainingReleasedBytes(const sim::SimView& view, std::size_t coflow_index);

/// Aggregate current rate of a coflow's active flows (valid right after an
/// allocation round; used for wake-up prediction).
util::Rate coflowAggregateRate(const sim::SimView& view, const ActiveCoflow& group);

}  // namespace aalo::sched
