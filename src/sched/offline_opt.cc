#include "sched/offline_opt.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace aalo::sched {

std::unordered_map<coflow::CoflowId, int> computeConcurrentOpenShopOrder(
    const coflow::Workload& workload) {
  struct Entry {
    coflow::CoflowId id;
    std::vector<util::Bytes> load;  // Per machine: [0,P) ingress, [P,2P) egress.
    double weight = 1.0;
    bool placed = false;
  };
  const auto p = static_cast<std::size_t>(workload.num_ports);
  const std::size_t machines = 2 * p;

  std::vector<Entry> entries;
  for (const coflow::JobSpec& job : workload.jobs) {
    for (const coflow::CoflowSpec& spec : job.coflows) {
      Entry e;
      e.id = spec.id;
      e.load.assign(machines, 0.0);
      for (const coflow::FlowSpec& f : spec.flows) {
        e.load[static_cast<std::size_t>(f.src)] += f.bytes;
        e.load[p + static_cast<std::size_t>(f.dst)] += f.bytes;
      }
      entries.push_back(std::move(e));
    }
  }

  std::unordered_map<coflow::CoflowId, int> rank;
  std::vector<util::Bytes> machine_load(machines, 0.0);
  for (const Entry& e : entries) {
    for (std::size_t m = 0; m < machines; ++m) machine_load[m] += e.load[m];
  }

  // Place coflows from last to first.
  for (int pos = static_cast<int>(entries.size()) - 1; pos >= 0; --pos) {
    std::size_t bottleneck = 0;
    for (std::size_t m = 1; m < machines; ++m) {
      if (machine_load[m] > machine_load[bottleneck]) bottleneck = m;
    }
    // Pick the unplaced coflow minimizing weight / load on the bottleneck
    // (unit weights: the largest contributor) to go last.
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best = entries.size();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      if (e.placed || e.load[bottleneck] <= 0) continue;
      const double ratio = e.weight / e.load[bottleneck];
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best == entries.size()) {
      // Bottleneck machine has no unplaced load (all remaining coflows
      // miss it); any unplaced coflow may go last.
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].placed) {
          best = i;
          break;
        }
      }
    }
    if (best == entries.size()) throw std::logic_error("open-shop order: no candidate");

    Entry& chosen = entries[best];
    chosen.placed = true;
    rank[chosen.id] = pos;
    // Dual adjustment: discount the weights of remaining coflows by their
    // bottleneck contribution relative to the chosen one.
    if (chosen.load[bottleneck] > 0) {
      const double factor = chosen.weight / chosen.load[bottleneck];
      for (Entry& e : entries) {
        if (!e.placed && e.load[bottleneck] > 0) {
          e.weight -= factor * e.load[bottleneck];
        }
      }
    }
    for (std::size_t m = 0; m < machines; ++m) machine_load[m] -= chosen.load[m];
  }
  return rank;
}

OfflineOrderScheduler::OfflineOrderScheduler(
    std::unordered_map<coflow::CoflowId, int> order)
    : order_(std::move(order)) {}

void OfflineOrderScheduler::allocate(const sim::SimView& view,
                                     std::vector<util::Rate>& rates) {
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  sorted_.assign(groups.size(), nullptr);
  for (std::size_t g = 0; g < groups.size(); ++g) sorted_[g] = &groups[g];
  std::sort(sorted_.begin(), sorted_.end(),
            [&](const ActiveCoflow* a, const ActiveCoflow* b) {
              const auto ra = order_.find(view.coflow(a->coflow_index).id);
              const auto rb = order_.find(view.coflow(b->coflow_index).id);
              const int va =
                  ra == order_.end() ? std::numeric_limits<int>::max() : ra->second;
              const int vb =
                  rb == order_.end() ? std::numeric_limits<int>::max() : rb->second;
              if (va != vb) return va < vb;
              return view.coflow(a->coflow_index).id < view.coflow(b->coflow_index).id;
            });

  fabric::ResidualCapacity residual(*view.fabric);
  for (const ActiveCoflow* group : sorted_) {
    allocateCoflowMadd(view, *group, residual, rates, scratch_);
  }
  backfillMaxMin(view, *view.active_flows, residual, rates, scratch_);
}

}  // namespace aalo::sched
