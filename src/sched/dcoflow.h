// Deadline-aware coflow scheduling with admission control (DCoflow-style).
//
// Coflows carry optional completion deadlines (CoflowSpec::deadline,
// relative to release). The scheduler keeps admitted coflows in a fixed
// sigma-order — earliest absolute deadline first, deadline-free coflows
// last — and serves them with per-coflow max-min in that order. When a
// new coflow becomes active it is admitted only if, under a conservative
// sigma-order completion bound (cumulative remaining load over every
// port, divided by port capacity), its own deadline AND every already
// admitted coflow's deadline still hold. Otherwise it is *rejected*:
// dropped to background priority so it cannot hurt anyone who can still
// make their deadline. Rejected coflows keep receiving leftover
// bandwidth, so every simulation terminates and rejection shows up as
// deadline misses plus SimResult::rejected_coflows, never as a hang.
//
// This is the admission-control idea of DCoflow (sigma-order test) grafted
// onto this repo's fluid engine; the bound ignores rack constraints, so
// on oversubscribed fabrics admission is optimistic (a miss, not a bug).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "coflow/ids.h"
#include "fabric/maxmin.h"
#include "sched/common.h"
#include "sim/scheduler.h"
#include "util/units.h"

namespace aalo::sched {

struct DCoflowConfig {
  /// The sigma-order completion bound is scaled by this before the
  /// deadline test; > 1 rejects more aggressively (safety margin for
  /// fabric effects the bound ignores).
  double admission_margin = 1.0;
  /// Backfill leftover capacity across admitted flows before the
  /// background pass over rejected ones.
  bool work_conserving = true;
};

/// One admission decision, recorded when a coflow first becomes active.
struct AdmissionDecision {
  coflow::CoflowId id;
  std::size_t coflow_index = 0;
  bool admitted = false;
  /// Conservative sigma-order completion instant computed at decision
  /// time (absolute seconds, admission_margin already applied).
  util::Seconds bound = 0;
  /// Absolute deadline; kInfTime when the coflow has none.
  util::Seconds deadline_abs = sim::kInfTime;
  util::Seconds decided_at = 0;
};

class DCoflowScheduler final : public sim::Scheduler {
 public:
  explicit DCoflowScheduler(DCoflowConfig config = {}) : config_(config) {}

  std::string name() const override { return "dcoflow"; }

  void reset(const fabric::Fabric& fabric) override;
  std::uint64_t scheduleEpoch(const sim::SimView& view) override;
  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  std::size_t rejectedCoflows() const override { return rejected_; }

  /// Every admission decision of the run, in decision order (test and
  /// telemetry introspection).
  const std::vector<AdmissionDecision>& admissionLog() const { return log_; }

 private:
  /// Decides admission for every active coflow that has no decision yet.
  /// Idempotent and cheap when there is nothing to decide; called at the
  /// top of both allocate() and scheduleEpoch() so the legacy engine
  /// (which never calls scheduleEpoch) and the incremental engine (which
  /// may skip allocate on reused rounds) make identical decisions —
  /// a coflow's first active round always changes flow membership, so
  /// both engines evaluate it with freshly materialized state.
  void decideAdmissions(const sim::SimView& view);

  DCoflowConfig config_;

  std::vector<std::uint8_t> decided_;   ///< By coflow index.
  std::vector<std::uint8_t> admitted_;  ///< By coflow index.
  std::vector<AdmissionDecision> log_;
  std::size_t rejected_ = 0;
  /// Bumped on every decision; scheduleEpoch folds it in so reused rates
  /// can never straddle an admission change.
  std::uint64_t decision_version_ = 0;

  // Scratch (capacity reuse across rounds).
  std::vector<ActiveCoflow> groups_scratch_;
  std::vector<std::size_t> order_scratch_;
  std::vector<std::size_t> candidate_scratch_;
  std::vector<util::Bytes> cum_in_scratch_;
  std::vector<util::Bytes> cum_out_scratch_;
  std::vector<std::size_t> flows_scratch_;
  fabric::MaxMinScratch scratch_;
};

}  // namespace aalo::sched
