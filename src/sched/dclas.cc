#include "sched/dclas.h"


#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "coflow/ids.h"

namespace aalo::sched {

namespace {

util::Rate drainedThreshold(const fabric::Fabric& fabric) {
  // A residual is drained once no port can carry more than this; relative
  // to capacity because each water-filling pass leaves FP dust behind.
  util::Rate max_cap = 0;
  for (const util::Rate c : fabric.ingressCapacities()) max_cap = std::max(max_cap, c);
  return util::kEps * max_cap;
}

}  // namespace

double DClasConfig::queueWeight(int q) const {
  const int k = explicit_thresholds.empty()
                    ? num_queues
                    : static_cast<int>(explicit_thresholds.size()) + 1;
  return static_cast<double>(k - q);
}

std::vector<util::Bytes> DClasConfig::thresholds() const {
  if (!explicit_thresholds.empty()) {
    for (std::size_t i = 1; i < explicit_thresholds.size(); ++i) {
      if (explicit_thresholds[i] <= explicit_thresholds[i - 1]) {
        throw std::invalid_argument("DClasConfig: thresholds must be ascending");
      }
    }
    return explicit_thresholds;
  }
  if (num_queues < 1) throw std::invalid_argument("DClasConfig: num_queues must be >= 1");
  if (num_queues > 1 && exp_factor <= 1.0) {
    throw std::invalid_argument("DClasConfig: exp_factor must exceed 1");
  }
  if (num_queues > 1 && first_threshold <= 0) {
    throw std::invalid_argument("DClasConfig: first_threshold must be positive");
  }
  std::vector<util::Bytes> t;
  util::Bytes hi = first_threshold;
  for (int q = 0; q + 1 < num_queues; ++q) {
    t.push_back(hi);
    hi *= exp_factor;
  }
  return t;
}

DClasScheduler::DClasScheduler(DClasConfig config) : config_(std::move(config)) {
  thresholds_ = config_.thresholds();
  if (config_.sync_interval < 0) {
    throw std::invalid_argument("DClasScheduler: negative sync interval");
  }
}

std::string DClasScheduler::name() const {
  std::string n = "aalo-dclas";
  if (config_.policy == DClasConfig::QueuePolicy::kStrictPriority) n += "-strict";
  if (config_.sync_interval > 0) {
    n += "-d" + util::formatSeconds(config_.sync_interval);
  }
  return n;
}

void DClasScheduler::reset(const fabric::Fabric& fabric) {
  drained_threshold_ = drainedThreshold(fabric);
  known_sent_.clear();
  last_sync_boundary_ = -1;
  tracked_index_ = nullptr;
  tracked_epoch_ = 0;
  for (auto& q : queues_) {
    q.members.clear();
    q.dirty = true;
  }
  queue_of_.clear();
  active_flows_of_.clear();
  in_demand_.clear();
  out_demand_.clear();
  cached_total_weight_ = -1.0;
  ++schedule_epoch_;
}

void DClasScheduler::onCoflowFinished(const sim::SimView& view,
                                      std::size_t coflow_index) {
  (void)view;
  if (coflow_index < known_sent_.size()) known_sent_[coflow_index] = 0.0;
}

void DClasScheduler::setThresholds(std::vector<util::Bytes> thresholds) {
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    if (thresholds[i] <= thresholds[i - 1]) {
      throw std::invalid_argument("setThresholds: thresholds must be ascending");
    }
  }
  if (!thresholds.empty() && thresholds.front() <= 0) {
    throw std::invalid_argument("setThresholds: thresholds must be positive");
  }
  thresholds_ = std::move(thresholds);
  // Every coflow may land in a different queue (and the queue count may
  // change); force a full rebuild on the next scheduling round.
  tracked_index_ = nullptr;
  ++schedule_epoch_;
}

int queueForSize(std::span<const util::Bytes> thresholds, util::Bytes size) {
  // Queue = count of thresholds <= size, i.e. the partition point where
  // the ascending threshold ladder first exceeds the attained size.
  return static_cast<int>(
      std::upper_bound(thresholds.begin(), thresholds.end(), size) -
      thresholds.begin());
}

int DClasScheduler::queueOf(util::Bytes known_size) const {
  return queueForSize(thresholds_, known_size);
}

util::Bytes DClasScheduler::knownSize(std::size_t coflow_index) const {
  return coflow_index < known_sent_.size() ? known_sent_[coflow_index] : 0.0;
}

bool DClasScheduler::tracking(const sim::SimView& view) const {
  return tracked_index_ != nullptr && tracked_index_ == view.active_index &&
         tracked_epoch_ == view.active_index->epoch();
}

std::vector<std::vector<std::size_t>> DClasScheduler::queueSnapshot() const {
  std::vector<std::vector<std::size_t>> out;
  out.reserve(queues_.size());
  for (const QueueState& q : queues_) out.push_back(q.members);
  return out;
}

std::vector<std::vector<std::size_t>> DClasScheduler::referenceQueueSnapshot(
    const sim::SimView& view) const {
  std::vector<ActiveCoflow> scratch;
  const std::span<const ActiveCoflow> groups = activeGroups(view, scratch);
  std::vector<std::vector<std::size_t>> queues(thresholds_.size() + 1);
  for (const ActiveCoflow& g : groups) {
    queues[static_cast<std::size_t>(queueOf(knownSize(g.coflow_index)))].push_back(
        g.coflow_index);
  }
  const coflow::CoflowIdFifoLess fifo_less;
  for (auto& members : queues) {
    std::sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
      return fifo_less(view.coflow(a).id, view.coflow(b).id);
    });
  }
  return queues;
}

void DClasScheduler::markQueueDirty(int q) {
  if (q >= 0 && static_cast<std::size_t>(q) < queues_.size()) {
    queues_[static_cast<std::size_t>(q)].dirty = true;
  }
}

void DClasScheduler::markAllDirty() {
  for (QueueState& q : queues_) q.dirty = true;
}

void DClasScheduler::insertTracked(const sim::SimView& view, std::size_t coflow_index) {
  const int q = queueOf(knownSize(coflow_index));
  queue_of_[coflow_index] = q;
  std::vector<std::size_t>& members = queues_[static_cast<std::size_t>(q)].members;
  const coflow::CoflowIdFifoLess fifo_less;
  const auto pos = std::lower_bound(
      members.begin(), members.end(), coflow_index,
      [&](std::size_t a, std::size_t b) {
        return fifo_less(view.coflow(a).id, view.coflow(b).id);
      });
  members.insert(pos, coflow_index);
  markQueueDirty(q);
}

void DClasScheduler::removeTracked(std::size_t coflow_index) {
  const int q = queue_of_[coflow_index];
  queue_of_[coflow_index] = -1;
  if (q < 0 || static_cast<std::size_t>(q) >= queues_.size()) return;
  std::vector<std::size_t>& members = queues_[static_cast<std::size_t>(q)].members;
  const auto it = std::find(members.begin(), members.end(), coflow_index);
  if (it != members.end()) members.erase(it);
  markQueueDirty(q);
}

void DClasScheduler::maybeDemote(const sim::SimView& view, std::size_t coflow_index) {
  if (coflow_index >= queue_of_.size()) return;
  const int q_old = queue_of_[coflow_index];
  if (q_old < 0) return;
  const int q_new = queueOf(knownSize(coflow_index));
  if (q_new == q_old) return;
  removeTracked(coflow_index);
  insertTracked(view, coflow_index);
  ++schedule_epoch_;
}

bool DClasScheduler::hookTrackable(const sim::SimView& view) {
  if (tracked_index_ == nullptr || view.active_index != tracked_index_ ||
      view.active_index->epoch() != tracked_epoch_ + 1) {
    // A mutation we cannot attribute — persistent state is stale.
    tracked_index_ = nullptr;
    return false;
  }
  tracked_epoch_ = view.active_index->epoch();
  return true;
}

void DClasScheduler::onFlowStarted(const sim::SimView& view, std::size_t flow_index) {
  if (!hookTrackable(view)) return;
  const sim::FlowState& f = view.flow(flow_index);
  const std::size_t ci = f.coflow_index;
  if (ci >= queue_of_.size() || static_cast<std::size_t>(f.src) >= in_demand_.size() ||
      static_cast<std::size_t>(f.dst) >= out_demand_.size()) {
    tracked_index_ = nullptr;
    return;
  }
  ++in_demand_[static_cast<std::size_t>(f.src)];
  ++out_demand_[static_cast<std::size_t>(f.dst)];
  if (++active_flows_of_[ci] == 1) {
    insertTracked(view, ci);
  } else {
    markQueueDirty(queue_of_[ci]);
  }
  ++schedule_epoch_;
}

void DClasScheduler::onFlowCompleted(const sim::SimView& view, std::size_t flow_index) {
  if (!hookTrackable(view)) return;
  const sim::FlowState& f = view.flow(flow_index);
  const std::size_t ci = f.coflow_index;
  if (ci >= queue_of_.size() || static_cast<std::size_t>(f.src) >= in_demand_.size() ||
      static_cast<std::size_t>(f.dst) >= out_demand_.size() ||
      active_flows_of_[ci] == 0) {
    tracked_index_ = nullptr;
    return;
  }
  --in_demand_[static_cast<std::size_t>(f.src)];
  --out_demand_[static_cast<std::size_t>(f.dst)];
  if (--active_flows_of_[ci] == 0) {
    removeTracked(ci);
  } else {
    markQueueDirty(queue_of_[ci]);
  }
  ++schedule_epoch_;
}

void DClasScheduler::rebuildQueues(const sim::SimView& view) {
  const std::size_t k = thresholds_.size() + 1;
  if (queues_.size() != k) {
    queues_.assign(k, QueueState{});
  } else {
    for (QueueState& q : queues_) {
      q.members.clear();
      q.dirty = true;
    }
  }
  queue_of_.assign(view.coflows->size(), -1);
  active_flows_of_.assign(view.coflows->size(), 0);
  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());
  in_demand_.assign(ports, 0);
  out_demand_.assign(ports, 0);
  for (const ActiveCoflow& g : view.active_index->groups()) {
    const std::size_t ci = g.coflow_index;
    active_flows_of_[ci] = static_cast<std::uint32_t>(g.flow_indices.size());
    for (const std::size_t fi : g.flow_indices) {
      const sim::FlowState& f = view.flow(fi);
      ++in_demand_[static_cast<std::size_t>(f.src)];
      ++out_demand_[static_cast<std::size_t>(f.dst)];
    }
    const int q = queueOf(knownSize(ci));
    queue_of_[ci] = q;
    queues_[static_cast<std::size_t>(q)].members.push_back(ci);
  }
  const coflow::CoflowIdFifoLess fifo_less;
  for (QueueState& q : queues_) {
    std::sort(q.members.begin(), q.members.end(), [&](std::size_t a, std::size_t b) {
      return fifo_less(view.coflow(a).id, view.coflow(b).id);
    });
  }
  cached_total_weight_ = -1.0;
  tracked_index_ = view.active_index;
  tracked_epoch_ = view.active_index->epoch();
  ++schedule_epoch_;
}

void DClasScheduler::ensureTracking(const sim::SimView& view) {
  if (view.active_index == nullptr) {
    tracked_index_ = nullptr;
    return;
  }
  if (tracking(view)) return;
  rebuildQueues(view);
}

void DClasScheduler::maybeSync(const sim::SimView& view) {
  if (known_sent_.size() < view.coflows->size()) {
    known_sent_.resize(view.coflows->size(), 0.0);
  }
  const bool tracked = tracking(view);
  if (config_.sync_interval <= 0) {
    // Instant coordination: the coordinator always knows the true global
    // attained service. Note: only `sent` is read, never remaining sizes.
    // One update per active coflow, not per active flow.
    for (const ActiveCoflow& g : activeGroups(view, groups_scratch_)) {
      known_sent_[g.coflow_index] = view.coflow(g.coflow_index).sent;
      if (tracked) maybeDemote(view, g.coflow_index);
    }
    return;
  }
  const auto boundary = static_cast<std::int64_t>(
      std::floor((view.now + util::kEps) / config_.sync_interval));
  if (boundary <= last_sync_boundary_) return;
  last_sync_boundary_ = boundary;
  // The coordinator learned sizes at the boundary, not at view.now. Rates
  // have been constant since the previous allocation round (membership
  // changes always trigger one), so back-date each coflow's attained
  // service: sent(boundary) = sent(now) - rate * (now - boundary).
  const util::Seconds boundary_time =
      static_cast<double>(boundary) * config_.sync_interval;
  for (const ActiveCoflow& g : activeGroups(view, groups_scratch_)) {
    const util::Rate rate = coflowAggregateRate(view, g);  // Previous round.
    const util::Bytes at_boundary = view.coflow(g.coflow_index).sent -
                                    rate * std::max(0.0, view.now - boundary_time);
    util::Bytes& known = known_sent_[g.coflow_index];
    known = std::max(known, std::max(0.0, at_boundary));
    if (tracked) maybeDemote(view, g.coflow_index);
  }
}

std::uint64_t DClasScheduler::scheduleEpoch(const sim::SimView& view) {
  if (view.active_index == nullptr) return 0;
  ensureTracking(view);
  // This is the per-round coordination point: apply any sync-boundary
  // demotions now so the returned epoch reflects them. Idempotent at a
  // fixed view.now.
  maybeSync(view);
  return schedule_epoch_;
}

bool DClasScheduler::demandDrained(const fabric::ResidualCapacity& residual,
                                   const std::vector<int>& in_demand,
                                   const std::vector<int>& out_demand,
                                   util::Rate drained) const {
  // Only ports some active flow actually demands matter: a flow's
  // available rate is a min over its own ports, so "all demanded ports
  // drained" implies nothing left to hand out. Checking *every* port (as
  // ResidualCapacity::exhausted does) almost never fires in sparse
  // phases, where most ports are idle and keep their full capacity.
  const std::size_t ports = in_demand.size();
  for (std::size_t p = 0; p < ports; ++p) {
    const auto pid = static_cast<coflow::PortId>(p);
    if (in_demand[p] > 0 && residual.ingress(pid) > drained) return false;
    if (out_demand[p] > 0 && residual.egress(pid) > drained) return false;
  }
  return true;
}

void DClasScheduler::allocateCoflowGainers(const sim::SimView& view,
                                           const ActiveCoflow& group,
                                           fabric::ResidualCapacity& residual,
                                           std::vector<util::Rate>& rates,
                                           util::Rate drained) {
  // Greedy redistribution runs against a mostly-drained residual, where
  // typically only a handful of a coflow's flows can still gain anything
  // beyond FP dust. Water-filling over just those flows does the same
  // useful work at a fraction of the cost of the full-width call.
  scratch_.demands.clear();
  gainers_scratch_.clear();
  const coflow::PortId* src = group.srcs.data();
  const coflow::PortId* dst = group.dsts.data();
  const std::size_t m = group.flow_indices.size();
  for (std::size_t j = 0; j < m; ++j) {
    if (residual.available(src[j], dst[j]) > drained) {
      scratch_.demands.push_back(
          fabric::Demand{src[j], dst[j], 1.0, fabric::kUncapped});
      gainers_scratch_.push_back(group.flow_indices[j]);
    }
  }
  if (gainers_scratch_.empty()) return;
  const std::vector<util::Rate>& shares =
      fabric::maxMinAllocate(scratch_.demands, residual, scratch_);
  for (std::size_t k = 0; k < gainers_scratch_.size(); ++k) {
    rates[gainers_scratch_[k]] += shares[k];
  }
}

void DClasScheduler::countDemand(const sim::SimView& view, std::vector<int>& in_demand,
                                 std::vector<int>& out_demand) const {
  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());
  in_demand.assign(ports, 0);
  out_demand.assign(ports, 0);
  const coflow::PortId* src = view.flows->src_port.data();
  const coflow::PortId* dst = view.flows->dst_port.data();
  for (const std::size_t fi : *view.active_flows) {
    ++in_demand[static_cast<std::size_t>(src[fi])];
    ++out_demand[static_cast<std::size_t>(dst[fi])];
  }
}

void DClasScheduler::allocateCoflowRecording(
    const sim::SimView& view, const ActiveCoflow& group,
    fabric::ResidualCapacity& residual, std::vector<util::Rate>& rates,
    util::Rate drained, std::vector<std::pair<std::size_t, util::Rate>>& out) {
  // Gainers-only, exactly like allocateCoflowGainers (the reference
  // primary pass must stay bit-identical), but recording each increment
  // so a clean queue can replay without re-running max-min. The filter
  // decisions depend only on the queue slice and the member's flows, both
  // inputs that dirty the queue when they change — so replays stay exact.
  scratch_.demands.clear();
  gainers_scratch_.clear();
  const coflow::PortId* src = group.srcs.data();
  const coflow::PortId* dst = group.dsts.data();
  const std::size_t m = group.flow_indices.size();
  for (std::size_t j = 0; j < m; ++j) {
    if (residual.available(src[j], dst[j]) > drained) {
      scratch_.demands.push_back(
          fabric::Demand{src[j], dst[j], 1.0, fabric::kUncapped});
      gainers_scratch_.push_back(group.flow_indices[j]);
    }
  }
  if (gainers_scratch_.empty()) return;
  const std::vector<util::Rate>& shares =
      fabric::maxMinAllocate(scratch_.demands, residual, scratch_);
  for (std::size_t k = 0; k < gainers_scratch_.size(); ++k) {
    const std::size_t fi = gainers_scratch_[k];
    rates[fi] += shares[k];
    out.emplace_back(fi, shares[k]);
  }
}

void DClasScheduler::allocate(const sim::SimView& view, std::vector<util::Rate>& rates) {
  ensureTracking(view);
  maybeSync(view);
  if (tracked_index_ == nullptr) {
    allocateReference(view, rates);
  } else if (config_.policy == DClasConfig::QueuePolicy::kStrictPriority) {
    allocateStrict(view, rates);
  } else {
    allocateWeighted(view, rates);
  }
  if (telemetry_ != nullptr) recordTelemetry(view, rates);
}

void DClasScheduler::recordTelemetry(const sim::SimView& view,
                                     const std::vector<util::Rate>& rates) {
  DClasQueueSample sample;
  sample.now = view.now;
  const std::size_t k = thresholds_.size() + 1;
  sample.occupancy.assign(k, 0);
  sample.queue_rates.assign(k, 0.0);
  for (const ActiveCoflow& g : activeGroups(view, groups_scratch_)) {
    const int q = queueOf(knownSize(g.coflow_index));
    util::Rate rate = 0;
    for (const std::size_t fi : g.flow_indices) rate += rates[fi];
    ++sample.occupancy[static_cast<std::size_t>(q)];
    sample.queue_rates[static_cast<std::size_t>(q)] += rate;
    sample.coflow_queues.emplace_back(g.coflow_index, q);
  }
  telemetry_->record(std::move(sample));
}

void DClasScheduler::allocateStrict(const sim::SimView& view,
                                    std::vector<util::Rate>& rates) {
  // Priority-ordered greedy over the persistent queues: inherently work
  // conserving. No rate caching — the residual threads through every
  // queue, so one dirty queue would invalidate everything after it.
  const util::Rate drained =
      drained_threshold_ >= 0 ? drained_threshold_ : drainedThreshold(*view.fabric);
  residual_scratch_.assignFrom(*view.fabric);
  fabric::ResidualCapacity& residual = residual_scratch_;
  for (const QueueState& q : queues_) {
    if (demandDrained(residual, in_demand_, out_demand_, drained)) break;
    for (const std::size_t ci : q.members) {
      const ActiveCoflow& group = *view.active_index->groupFor(ci);
      allocateCoflowGainers(view, group, residual, rates, drained);
      if (demandDrained(residual, in_demand_, out_demand_, drained)) break;
    }
  }
}

void DClasScheduler::allocateWeighted(const sim::SimView& view,
                                      std::vector<util::Rate>& rates) {
  // Weighted fair sharing between (non-empty) queues: queue q receives a
  // weight-proportional slice of every port, then excess is redistributed
  // in priority order (lines 10-14 of Pseudocode 1).
  //
  // Primary-pass results are cached per queue. A clean queue's inputs —
  // membership, FIFO order, flow endpoints, fair share, fabric — are
  // unchanged since its cache was recorded, so replaying the recorded
  // rate increments (and leftover slice) is bit-identical to recomputing.
  const int k = static_cast<int>(queues_.size());
  double total_weight = 0;
  for (int q = 0; q < k; ++q) {
    if (!queues_[static_cast<std::size_t>(q)].members.empty()) {
      total_weight += config_.queueWeight(q);
    }
  }
  if (total_weight <= 0) return;  // No active coflows.
  if (total_weight != cached_total_weight_) {
    // Every queue's fair share changed.
    markAllDirty();
    cached_total_weight_ = total_weight;
  }

  const util::Rate drained =
      drained_threshold_ >= 0 ? drained_threshold_ : drainedThreshold(*view.fabric);
  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());
  leftover_scratch_.assignFrom(*view.fabric, 0.0);
  fabric::ResidualCapacity& leftover = leftover_scratch_;
  for (int qi = 0; qi < k; ++qi) {
    QueueState& q = queues_[static_cast<std::size_t>(qi)];
    if (q.members.empty()) continue;
    if (q.dirty) {
      const double share = config_.queueWeight(qi) / total_weight;
      residual_scratch_.assignFrom(*view.fabric, share);
      fabric::ResidualCapacity& queue_residual = residual_scratch_;
      q.cached_rates.clear();
      for (const std::size_t ci : q.members) {
        allocateCoflowRecording(view, *view.active_index->groupFor(ci),
                                queue_residual, rates, drained, q.cached_rates);
        // A deep FIFO queue drains its slice after the first few coflows;
        // the rest would be handed an empty residual — skip them.
        if (demandDrained(queue_residual, in_demand_, out_demand_, drained)) break;
      }
      q.left_in = queue_residual.ingressAll();
      q.left_out = queue_residual.egressAll();
      if (view.fabric->hasRacks()) {
        q.left_up = queue_residual.rackUplinkAll();
        q.left_down = queue_residual.rackDownlinkAll();
      } else {
        q.left_up.clear();
        q.left_down.clear();
      }
      q.dirty = false;
    } else {
      for (const auto& [fi, r] : q.cached_rates) rates[fi] += r;
    }
    // Pool this queue's unused slice for the excess pass.
    for (std::size_t p = 0; p < ports; ++p) {
      leftover.ingressAll()[p] += q.left_in[p];
      leftover.egressAll()[p] += q.left_out[p];
    }
    for (std::size_t r = 0; r < q.left_up.size(); ++r) {
      leftover.rackUplinkAll()[r] += q.left_up[r];
      leftover.rackDownlinkAll()[r] += q.left_down[r];
    }
  }

  // Excess policy: hand unused capacity out again, highest priority
  // first. Always recomputed — the pooled leftover depends on every
  // queue's slice, so there is nothing stable to cache. In saturated
  // phases the pool often retains capacity only on ports no flow can
  // exploit (its peer port is drained), which keeps demandDrained from
  // firing — the gainers-only water-filling makes those coflows cheap
  // (or free, when no flow of theirs can gain).
  for (const QueueState& q : queues_) {
    if (demandDrained(leftover, in_demand_, out_demand_, drained)) break;
    for (const std::size_t ci : q.members) {
      const ActiveCoflow& group = *view.active_index->groupFor(ci);
      allocateCoflowGainers(view, group, leftover, rates, drained);
      if (demandDrained(leftover, in_demand_, out_demand_, drained)) break;
    }
  }
}

void DClasScheduler::allocateReference(const sim::SimView& view,
                                       std::vector<util::Rate>& rates) {
  // Pre-incremental path: partition + FIFO-sort every round. Retained as
  // the oracle for the persistent-queue state (and for hand-assembled
  // views without an active index). Must allocate exactly like the
  // incremental path given the same queue contents.
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  const int k = static_cast<int>(thresholds_.size()) + 1;
  queue_members_.resize(static_cast<std::size_t>(k));
  for (auto& members : queue_members_) members.clear();
  std::vector<std::vector<std::size_t>>& queue_members = queue_members_;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    queue_members[static_cast<std::size_t>(queueOf(knownSize(groups[g].coflow_index)))]
        .push_back(g);
  }
  const coflow::CoflowIdFifoLess fifo_less;
  for (auto& members : queue_members) {
    std::sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
      return fifo_less(view.coflow(groups[a].coflow_index).id,
                       view.coflow(groups[b].coflow_index).id);
    });
  }

  const util::Rate drained = drainedThreshold(*view.fabric);
  countDemand(view, in_demand_scratch_, out_demand_scratch_);
  const std::vector<int>& in_demand = in_demand_scratch_;
  const std::vector<int>& out_demand = out_demand_scratch_;

  if (config_.policy == DClasConfig::QueuePolicy::kStrictPriority) {
    // Priority-ordered greedy: inherently work conserving.
    fabric::ResidualCapacity residual(*view.fabric);
    for (const auto& members : queue_members) {
      if (demandDrained(residual, in_demand, out_demand, drained)) break;
      for (const std::size_t g : members) {
        allocateCoflowGainers(view, groups[g], residual, rates, drained);
        if (demandDrained(residual, in_demand, out_demand, drained)) break;
      }
    }
    return;
  }

  // Weighted fair sharing between (non-empty) queues.
  double total_weight = 0;
  for (int q = 0; q < k; ++q) {
    if (!queue_members[static_cast<std::size_t>(q)].empty()) {
      total_weight += config_.queueWeight(q);
    }
  }
  if (total_weight <= 0) return;  // No active coflows.

  fabric::ResidualCapacity leftover(*view.fabric, 0.0);
  for (int q = 0; q < k; ++q) {
    const auto& members = queue_members[static_cast<std::size_t>(q)];
    if (members.empty()) continue;
    const double share = config_.queueWeight(q) / total_weight;
    fabric::ResidualCapacity queue_residual(*view.fabric, share);
    for (const std::size_t g : members) {
      allocateCoflowGainers(view, groups[g], queue_residual, rates, drained);
      if (demandDrained(queue_residual, in_demand, out_demand, drained)) break;
    }
    // Pool this queue's unused slice for the excess pass.
    for (int p = 0; p < view.fabric->numPorts(); ++p) {
      const auto pid = static_cast<coflow::PortId>(p);
      leftover.ingressAll()[static_cast<std::size_t>(p)] += queue_residual.ingress(pid);
      leftover.egressAll()[static_cast<std::size_t>(p)] += queue_residual.egress(pid);
    }
    if (view.fabric->hasRacks()) {
      for (int r = 0; r < view.fabric->numRacks(); ++r) {
        leftover.rackUplinkAll()[static_cast<std::size_t>(r)] +=
            queue_residual.rackUplink(r);
        leftover.rackDownlinkAll()[static_cast<std::size_t>(r)] +=
            queue_residual.rackDownlink(r);
      }
    }
  }

  // Excess policy: hand unused capacity out again, highest priority first.
  for (const auto& members : queue_members) {
    if (demandDrained(leftover, in_demand, out_demand, drained)) break;
    for (const std::size_t g : members) {
      allocateCoflowGainers(view, groups[g], leftover, rates, drained);
      if (demandDrained(leftover, in_demand, out_demand, drained)) break;
    }
  }
}

util::Seconds DClasScheduler::nextWakeup(const sim::SimView& view) {
  if (config_.sync_interval > 0) {
    // The real Aalo coordinator broadcasts every Δ whether or not anything
    // changed, and demotions can only land on boundaries — so waking at
    // exactly the next boundary is result-identical to predicting the
    // threshold crossing. It is also what makes boundary wake-ups with no
    // demotion reusable rounds for the incremental engine (the schedule
    // epoch is unchanged, so the installed rates stay valid).
    if (view.active_flows == nullptr || view.active_flows->empty()) {
      return sim::kInfTime;
    }
    return (std::floor((view.now + util::kEps) / config_.sync_interval) + 1.0) *
           config_.sync_interval;
  }
  // Δ = 0: the schedule only changes between events when a coflow's known
  // size crosses a queue threshold (demotion). Predict the earliest such
  // time from the just-installed rates.
  util::Seconds earliest = sim::kInfTime;
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  for (const ActiveCoflow& group : groups) {
    const int q = queueOf(knownSize(group.coflow_index));
    if (q >= static_cast<int>(thresholds_.size())) continue;  // Lowest queue.
    const util::Bytes threshold = thresholds_[static_cast<std::size_t>(q)];
    const util::Bytes true_sent = view.coflow(group.coflow_index).sent;
    util::Seconds cross;
    if (true_sent >= threshold) {
      cross = view.now;  // Already crossed; demote next round.
    } else {
      const util::Rate rate = coflowAggregateRate(view, group);
      if (rate <= util::kEps) continue;
      cross = view.now + (threshold - true_sent) / rate;
      // Nudge past the crossing: integration rounding must not leave
      // `sent` an ulp below the threshold at the wake round — the
      // demotion would be skipped and no new wake scheduled for it.
      cross += 1e-9 * std::max(1.0, cross);
    }
    if (cross > view.now + util::kEps) earliest = std::min(earliest, cross);
  }
  return earliest;
}

}  // namespace aalo::sched
