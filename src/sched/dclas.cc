#include "sched/dclas.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "coflow/ids.h"

namespace aalo::sched {

double DClasConfig::queueWeight(int q) const {
  const int k = explicit_thresholds.empty()
                    ? num_queues
                    : static_cast<int>(explicit_thresholds.size()) + 1;
  return static_cast<double>(k - q);
}

std::vector<util::Bytes> DClasConfig::thresholds() const {
  if (!explicit_thresholds.empty()) {
    for (std::size_t i = 1; i < explicit_thresholds.size(); ++i) {
      if (explicit_thresholds[i] <= explicit_thresholds[i - 1]) {
        throw std::invalid_argument("DClasConfig: thresholds must be ascending");
      }
    }
    return explicit_thresholds;
  }
  if (num_queues < 1) throw std::invalid_argument("DClasConfig: num_queues must be >= 1");
  if (num_queues > 1 && exp_factor <= 1.0) {
    throw std::invalid_argument("DClasConfig: exp_factor must exceed 1");
  }
  if (num_queues > 1 && first_threshold <= 0) {
    throw std::invalid_argument("DClasConfig: first_threshold must be positive");
  }
  std::vector<util::Bytes> t;
  util::Bytes hi = first_threshold;
  for (int q = 0; q + 1 < num_queues; ++q) {
    t.push_back(hi);
    hi *= exp_factor;
  }
  return t;
}

DClasScheduler::DClasScheduler(DClasConfig config) : config_(std::move(config)) {
  thresholds_ = config_.thresholds();
  if (config_.sync_interval < 0) {
    throw std::invalid_argument("DClasScheduler: negative sync interval");
  }
}

std::string DClasScheduler::name() const {
  std::string n = "aalo-dclas";
  if (config_.policy == DClasConfig::QueuePolicy::kStrictPriority) n += "-strict";
  if (config_.sync_interval > 0) {
    n += "-d" + util::formatSeconds(config_.sync_interval);
  }
  return n;
}

void DClasScheduler::reset(const fabric::Fabric& fabric) {
  (void)fabric;
  known_sent_.clear();
  last_sync_boundary_ = -1;
}

void DClasScheduler::onCoflowFinished(const sim::SimView& view,
                                      std::size_t coflow_index) {
  (void)view;
  if (coflow_index < known_sent_.size()) known_sent_[coflow_index] = 0.0;
}

void DClasScheduler::setThresholds(std::vector<util::Bytes> thresholds) {
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    if (thresholds[i] <= thresholds[i - 1]) {
      throw std::invalid_argument("setThresholds: thresholds must be ascending");
    }
  }
  if (!thresholds.empty() && thresholds.front() <= 0) {
    throw std::invalid_argument("setThresholds: thresholds must be positive");
  }
  thresholds_ = std::move(thresholds);
}

int DClasScheduler::queueOf(util::Bytes known_size) const {
  int q = 0;
  while (q < static_cast<int>(thresholds_.size()) && known_size >= thresholds_[q]) {
    ++q;
  }
  return q;
}

util::Bytes DClasScheduler::knownSize(std::size_t coflow_index) const {
  return coflow_index < known_sent_.size() ? known_sent_[coflow_index] : 0.0;
}

void DClasScheduler::maybeSync(const sim::SimView& view) {
  if (known_sent_.size() < view.coflows->size()) {
    known_sent_.resize(view.coflows->size(), 0.0);
  }
  if (config_.sync_interval <= 0) {
    // Instant coordination: the coordinator always knows the true global
    // attained service. Note: only `sent` is read, never remaining sizes.
    // One hash update per active coflow, not per active flow.
    for (const ActiveCoflow& g : activeGroups(view, groups_scratch_)) {
      known_sent_[g.coflow_index] = view.coflow(g.coflow_index).sent;
    }
    return;
  }
  const auto boundary = static_cast<std::int64_t>(
      std::floor((view.now + util::kEps) / config_.sync_interval));
  if (boundary <= last_sync_boundary_) return;
  last_sync_boundary_ = boundary;
  // The coordinator learned sizes at the boundary, not at view.now. Rates
  // have been constant since the previous allocation round (the engine
  // reallocates on every event), so back-date each coflow's attained
  // service: sent(boundary) = sent(now) - rate * (now - boundary).
  const util::Seconds boundary_time =
      static_cast<double>(boundary) * config_.sync_interval;
  for (const ActiveCoflow& g : activeGroups(view, groups_scratch_)) {
    const util::Rate rate = coflowAggregateRate(view, g);  // Previous round.
    const util::Bytes at_boundary = view.coflow(g.coflow_index).sent -
                                    rate * std::max(0.0, view.now - boundary_time);
    util::Bytes& known = known_sent_[g.coflow_index];
    known = std::max(known, std::max(0.0, at_boundary));
  }
}

void DClasScheduler::allocate(const sim::SimView& view, std::vector<util::Rate>& rates) {
  maybeSync(view);

  // Partition active coflows into queues; FIFO order within each queue.
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  const int k = static_cast<int>(thresholds_.size()) + 1;
  queue_members_.resize(static_cast<std::size_t>(k));
  for (auto& members : queue_members_) members.clear();
  std::vector<std::vector<std::size_t>>& queue_members = queue_members_;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    queue_members[static_cast<std::size_t>(queueOf(knownSize(groups[g].coflow_index)))]
        .push_back(g);
  }
  const coflow::CoflowIdFifoLess fifo_less;
  for (auto& members : queue_members) {
    std::sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
      return fifo_less(view.coflow(groups[a].coflow_index).id,
                       view.coflow(groups[b].coflow_index).id);
    });
  }

  // A residual is drained once no port can carry more than this; relative
  // to capacity because each water-filling pass leaves FP dust behind.
  util::Rate max_cap = 0;
  for (const util::Rate c : view.fabric->ingressCapacities()) {
    max_cap = std::max(max_cap, c);
  }
  const util::Rate drained = util::kEps * max_cap;

  if (config_.policy == DClasConfig::QueuePolicy::kStrictPriority) {
    // Priority-ordered greedy: inherently work conserving.
    fabric::ResidualCapacity residual(*view.fabric);
    for (const auto& members : queue_members) {
      if (residual.exhausted(drained)) break;
      for (const std::size_t g : members) {
        allocateCoflowMaxMin(view, groups[g], residual, rates, scratch_);
        if (residual.exhausted(drained)) break;
      }
    }
    return;
  }

  // Weighted fair sharing between (non-empty) queues: queue q receives a
  // weight-proportional slice of every port, then excess is redistributed
  // in priority order (lines 10-14 of Pseudocode 1).
  double total_weight = 0;
  for (int q = 0; q < k; ++q) {
    if (!queue_members[static_cast<std::size_t>(q)].empty()) {
      total_weight += config_.queueWeight(q);
    }
  }
  if (total_weight <= 0) return;  // No active coflows.

  fabric::ResidualCapacity leftover(*view.fabric, 0.0);
  for (int q = 0; q < k; ++q) {
    const auto& members = queue_members[static_cast<std::size_t>(q)];
    if (members.empty()) continue;
    const double share = config_.queueWeight(q) / total_weight;
    fabric::ResidualCapacity queue_residual(*view.fabric, share);
    for (const std::size_t g : members) {
      allocateCoflowMaxMin(view, groups[g], queue_residual, rates, scratch_);
      // A deep FIFO queue drains its slice after the first few coflows;
      // the rest would be handed an empty residual — skip them.
      if (queue_residual.exhausted(drained)) break;
    }
    // Pool this queue's unused slice for the excess pass.
    for (int p = 0; p < view.fabric->numPorts(); ++p) {
      const auto pid = static_cast<coflow::PortId>(p);
      leftover.ingressAll()[static_cast<std::size_t>(p)] += queue_residual.ingress(pid);
      leftover.egressAll()[static_cast<std::size_t>(p)] += queue_residual.egress(pid);
    }
    if (view.fabric->hasRacks()) {
      for (int r = 0; r < view.fabric->numRacks(); ++r) {
        leftover.rackUplinkAll()[static_cast<std::size_t>(r)] +=
            queue_residual.rackUplink(r);
        leftover.rackDownlinkAll()[static_cast<std::size_t>(r)] +=
            queue_residual.rackDownlink(r);
      }
    }
  }

  // Excess policy: hand unused capacity out again, highest priority first.
  for (const auto& members : queue_members) {
    if (leftover.exhausted(drained)) break;
    for (const std::size_t g : members) {
      allocateCoflowMaxMin(view, groups[g], leftover, rates, scratch_);
      if (leftover.exhausted(drained)) break;
    }
  }
}

util::Seconds DClasScheduler::nextWakeup(const sim::SimView& view) {
  // The schedule only changes between events when a coflow's known size
  // crosses a queue threshold (demotion). Predict the earliest such time
  // from the just-installed rates; with Δ > 0 the demotion lands on the
  // first sync boundary after the true crossing.
  util::Seconds earliest = sim::kInfTime;
  // With the engine-maintained index this is a read, not a rebuild —
  // allocate() and nextWakeup() see the same grouping for free.
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  for (const ActiveCoflow& group : groups) {
    const int q = queueOf(knownSize(group.coflow_index));
    if (q >= static_cast<int>(thresholds_.size())) continue;  // Lowest queue.
    const util::Bytes threshold = thresholds_[static_cast<std::size_t>(q)];
    const util::Bytes true_sent = view.coflow(group.coflow_index).sent;
    util::Seconds cross;
    if (true_sent >= threshold) {
      cross = view.now;  // Already crossed; demote at the next boundary.
    } else {
      const util::Rate rate = coflowAggregateRate(view, group);
      if (rate <= util::kEps) continue;
      cross = view.now + (threshold - true_sent) / rate;
    }
    if (config_.sync_interval > 0) {
      const double k_boundary = std::ceil((cross - util::kEps) / config_.sync_interval);
      util::Seconds boundary = k_boundary * config_.sync_interval;
      if (boundary <= view.now + util::kEps) boundary += config_.sync_interval;
      earliest = std::min(earliest, boundary);
    } else {
      if (cross > view.now + util::kEps) earliest = std::min(earliest, cross);
    }
  }
  return earliest;
}

}  // namespace aalo::sched
