// FIFO with Limited Multiplexing — the Baraat baseline (Dogar et al.,
// SIGCOMM'14), simulated as in §7.2.1 of the Aalo paper.
//
// Fully decentralized: each ingress port schedules coflows ("tasks" in
// Baraat) in arrival (CoflowId) order. The head coflow gets the port
// exclusively while it is light; once a coflow's locally observed size
// crosses the heavy threshold it is considered heavy and multiplexed
// fairly with the coflows behind it. Decisions are locally correct but
// globally inconsistent — the pathology Figure 8 quantifies.
#pragma once

#include "sched/common.h"

namespace aalo::sched {

struct FifoLmConfig {
  /// A coflow whose locally attained service at a port exceeds this is
  /// heavy there. The paper sets it to the 80th percentile of the coflow
  /// size distribution (per-port share thereof).
  util::Bytes heavy_threshold = 100 * util::kMB;
  /// Decision quantum for heaviness drift.
  util::Seconds quantum = 1.0;
  bool work_conserving = true;
};

class FifoLmScheduler final : public sim::Scheduler {
 public:
  explicit FifoLmScheduler(FifoLmConfig config = {});

  std::string name() const override { return "fifo-lm-baraat"; }

  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  util::Seconds nextWakeup(const sim::SimView& view) override;

 private:
  FifoLmConfig config_;
  fabric::MaxMinScratch scratch_;
  std::vector<ActiveCoflow> groups_scratch_;
};

}  // namespace aalo::sched
