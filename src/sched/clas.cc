#include "sched/clas.h"

#include <algorithm>

namespace aalo::sched {

ContinuousClasScheduler::ContinuousClasScheduler(ClasConfig config) : config_(config) {}

void ContinuousClasScheduler::allocate(const sim::SimView& view,
                                       std::vector<util::Rate>& rates) {
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  // Sort an index array over the (const) grouping instead of copying it.
  order_.assign(groups.size(), nullptr);
  for (std::size_t g = 0; g < groups.size(); ++g) order_[g] = &groups[g];
  std::sort(order_.begin(), order_.end(),
            [&](const ActiveCoflow* a, const ActiveCoflow* b) {
              const util::Bytes sa = view.coflow(a->coflow_index).sent;
              const util::Bytes sb = view.coflow(b->coflow_index).sent;
              if (sa != sb) return sa < sb;
              return view.coflow(a->coflow_index).id < view.coflow(b->coflow_index).id;
            });

  fabric::ResidualCapacity residual(*view.fabric);
  // Walk tie groups in least-attained order; tied coflows share the
  // residual jointly with per-coflow (not per-flow) fairness.
  std::vector<std::size_t> flat;
  std::size_t i = 0;
  while (i < order_.size()) {
    std::size_t j = i + 1;
    const util::Bytes base = view.coflow(order_[i]->coflow_index).sent;
    while (j < order_.size() &&
           view.coflow(order_[j]->coflow_index).sent - base <= config_.tie_window) {
      ++j;
    }
    scratch_.demands.clear();
    flat.clear();
    for (std::size_t g = i; g < j; ++g) {
      const double per_flow_weight =
          1.0 / static_cast<double>(order_[g]->flow_indices.size());
      for (const std::size_t fi : order_[g]->flow_indices) {
        const sim::FlowState& f = view.flow(fi);
        scratch_.demands.push_back(
            fabric::Demand{f.src, f.dst, per_flow_weight, fabric::kUncapped});
        flat.push_back(fi);
      }
    }
    const std::vector<util::Rate>& shares =
        fabric::maxMinAllocate(scratch_.demands, residual, scratch_);
    for (std::size_t k = 0; k < flat.size(); ++k) rates[flat[k]] += shares[k];
    i = j;
  }
}

util::Seconds ContinuousClasScheduler::nextWakeup(const sim::SimView& view) {
  // Re-run when a served coflow is about to catch up with the attained
  // service of a (currently less-served, hence higher-priority) peer.
  std::vector<const sim::CoflowState*> active;
  std::vector<util::Rate> agg_rate;
  const std::span<const ActiveCoflow> groups = activeGroups(view, groups_scratch_);
  for (const ActiveCoflow& g : groups) {
    active.push_back(&view.coflow(g.coflow_index));
    agg_rate.push_back(coflowAggregateRate(view, g));
  }
  util::Seconds earliest = view.now + config_.quantum;
  for (std::size_t a = 0; a < active.size(); ++a) {
    for (std::size_t b = 0; b < active.size(); ++b) {
      if (a == b) continue;
      const util::Bytes gap = active[b]->sent - active[a]->sent;
      const util::Rate closing = agg_rate[a] - agg_rate[b];
      if (gap > config_.tie_window && closing > util::kEps) {
        earliest = std::min(earliest, view.now + gap / closing);
      }
    }
  }
  return earliest;
}

}  // namespace aalo::sched
