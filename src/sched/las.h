// Decentralized (uncoordinated) least-attained service — the
// "Uncoordinated Non-Clairvoyant" baseline of §7.2.1 and Figure 1d.
//
// Each ingress port independently applies LAS using only *locally*
// observed attained service: the coflow(s) with the least bytes sent
// through that specific port get the port; near-ties share. Local
// observations are poor predictors of global coflow size (Theorem A.1),
// which is exactly the pathology this baseline demonstrates.
#pragma once

#include "sched/common.h"

namespace aalo::sched {

struct LasConfig {
  /// Local attained-service gap below which coflows tie at a port.
  util::Bytes tie_window = 1 * util::kKB;
  /// Decision quantum: local priorities drift continuously, so the
  /// schedule is recomputed at least this often.
  util::Seconds quantum = 1.0;
  /// Distribute residual capacity to deprioritized flows (TCP-like
  /// backfill). On by default for work conservation.
  bool work_conserving = true;
};

class DecentralizedLasScheduler final : public sim::Scheduler {
 public:
  explicit DecentralizedLasScheduler(LasConfig config = {});

  std::string name() const override { return "uncoordinated-las"; }

  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  util::Seconds nextWakeup(const sim::SimView& view) override;

 private:
  LasConfig config_;
  fabric::MaxMinScratch scratch_;
  std::vector<ActiveCoflow> groups_scratch_;
};

}  // namespace aalo::sched
