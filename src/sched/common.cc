#include "sched/common.h"

#include <algorithm>
#include <unordered_map>

namespace aalo::sched {

std::span<const ActiveCoflow> activeGroups(const sim::SimView& view,
                                           std::vector<ActiveCoflow>& scratch) {
  if (view.active_index != nullptr) return view.active_index->groups();
  scratch = groupActiveByCoflow(view);
  return scratch;
}

std::vector<ActiveCoflow> groupActiveByCoflow(const sim::SimView& view) {
  std::vector<ActiveCoflow> groups;
  std::unordered_map<std::size_t, std::size_t> group_of;  // coflow idx -> groups idx
  for (const std::size_t fi : *view.active_flows) {
    const sim::FlowState f = view.flow(fi);
    auto [it, inserted] = group_of.try_emplace(f.coflow_index, groups.size());
    if (inserted) {
      groups.push_back(ActiveCoflow{f.coflow_index, {}, {}, {}});
    }
    ActiveCoflow& g = groups[it->second];
    g.flow_indices.push_back(fi);
    g.srcs.push_back(f.src);
    g.dsts.push_back(f.dst);
  }
  return groups;
}

void allocateCoflowMaxMin(const sim::SimView& view, const ActiveCoflow& group,
                          fabric::ResidualCapacity& residual,
                          std::vector<util::Rate>& rates,
                          fabric::MaxMinScratch& scratch) {
  scratch.demands.clear();
  scratch.demands.reserve(group.flow_indices.size());
  for (const std::size_t fi : group.flow_indices) {
    const sim::FlowState& f = view.flow(fi);
    scratch.demands.push_back(fabric::Demand{f.src, f.dst, 1.0, fabric::kUncapped});
  }
  const std::vector<util::Rate>& shares =
      fabric::maxMinAllocate(scratch.demands, residual, scratch);
  for (std::size_t k = 0; k < group.flow_indices.size(); ++k) {
    rates[group.flow_indices[k]] += shares[k];
  }
}

void allocateCoflowMadd(const sim::SimView& view, const ActiveCoflow& group,
                        fabric::ResidualCapacity& residual,
                        std::vector<util::Rate>& rates,
                        fabric::MaxMinScratch& scratch) {
  // Effective bottleneck: time to drain the coflow's per-resource
  // remaining bytes at the residual rates (ports, plus rack links on
  // oversubscribed fabrics).
  const auto ports = static_cast<std::size_t>(residual.numPorts());
  const fabric::Fabric* rack_fabric = residual.fabric();
  const std::size_t racks =
      rack_fabric != nullptr ? static_cast<std::size_t>(rack_fabric->numRacks()) : 0;
  std::vector<util::Bytes>& rem_in = scratch.rem_in;
  std::vector<util::Bytes>& rem_out = scratch.rem_out;
  std::vector<util::Bytes>& rem_up = scratch.rem_up;
  std::vector<util::Bytes>& rem_down = scratch.rem_down;
  rem_in.assign(ports, 0.0);
  rem_out.assign(ports, 0.0);
  rem_up.assign(racks, 0.0);
  rem_down.assign(racks, 0.0);
  for (const std::size_t fi : group.flow_indices) {
    const sim::FlowState& f = view.flow(fi);
    const util::Bytes rem = std::max(0.0, f.size - f.sent);
    rem_in[static_cast<std::size_t>(f.src)] += rem;
    rem_out[static_cast<std::size_t>(f.dst)] += rem;
    if (rack_fabric != nullptr && rack_fabric->crossRack(f.src, f.dst)) {
      rem_up[static_cast<std::size_t>(rack_fabric->rackOf(f.src))] += rem;
      rem_down[static_cast<std::size_t>(rack_fabric->rackOf(f.dst))] += rem;
    }
  }
  double gamma = 0.0;  // Seconds to finish the coflow.
  for (std::size_t p = 0; p < ports; ++p) {
    const auto pid = static_cast<coflow::PortId>(p);
    if (rem_in[p] > 0) {
      const util::Rate cap = residual.ingress(pid);
      if (cap <= util::kEps) return;  // Port exhausted; later pass backfills.
      gamma = std::max(gamma, rem_in[p] / cap);
    }
    if (rem_out[p] > 0) {
      const util::Rate cap = residual.egress(pid);
      if (cap <= util::kEps) return;
      gamma = std::max(gamma, rem_out[p] / cap);
    }
  }
  for (std::size_t r = 0; r < racks; ++r) {
    if (rem_up[r] > 0) {
      const util::Rate cap = residual.rackUplink(static_cast<int>(r));
      if (cap <= util::kEps) return;
      gamma = std::max(gamma, rem_up[r] / cap);
    }
    if (rem_down[r] > 0) {
      const util::Rate cap = residual.rackDownlink(static_cast<int>(r));
      if (cap <= util::kEps) return;
      gamma = std::max(gamma, rem_down[r] / cap);
    }
  }
  if (gamma <= 0.0) return;  // Nothing left to send.
  for (const std::size_t fi : group.flow_indices) {
    const sim::FlowState& f = view.flow(fi);
    const util::Bytes rem = std::max(0.0, f.size - f.sent);
    if (rem <= 0) continue;
    const util::Rate r = rem / gamma;
    rates[fi] += r;
    residual.consume(f.src, f.dst, r);
  }
}

void backfillMaxMin(const sim::SimView& view,
                    const std::vector<std::size_t>& flow_indices,
                    fabric::ResidualCapacity& residual,
                    std::vector<util::Rate>& rates,
                    fabric::MaxMinScratch& scratch) {
  scratch.demands.clear();
  scratch.demands.reserve(flow_indices.size());
  for (const std::size_t fi : flow_indices) {
    const sim::FlowState& f = view.flow(fi);
    scratch.demands.push_back(fabric::Demand{f.src, f.dst, 1.0, fabric::kUncapped});
  }
  const std::vector<util::Rate>& shares =
      fabric::maxMinAllocate(scratch.demands, residual, scratch);
  for (std::size_t k = 0; k < flow_indices.size(); ++k) {
    rates[flow_indices[k]] += shares[k];
  }
}

void allocateCoflowMaxMin(const sim::SimView& view, const ActiveCoflow& group,
                          fabric::ResidualCapacity& residual,
                          std::vector<util::Rate>& rates) {
  fabric::MaxMinScratch scratch;
  allocateCoflowMaxMin(view, group, residual, rates, scratch);
}

void allocateCoflowMadd(const sim::SimView& view, const ActiveCoflow& group,
                        fabric::ResidualCapacity& residual,
                        std::vector<util::Rate>& rates) {
  fabric::MaxMinScratch scratch;
  allocateCoflowMadd(view, group, residual, rates, scratch);
}

void backfillMaxMin(const sim::SimView& view,
                    const std::vector<std::size_t>& flow_indices,
                    fabric::ResidualCapacity& residual,
                    std::vector<util::Rate>& rates) {
  fabric::MaxMinScratch scratch;
  backfillMaxMin(view, flow_indices, residual, rates, scratch);
}

util::Bytes remainingReleasedBytes(const sim::SimView& view, std::size_t coflow_index) {
  const sim::CoflowState& c = view.coflow(coflow_index);
  // size_released counts started flows; started flows' sent is all of sent
  // (unstarted flows cannot have sent bytes).
  return std::max(0.0, c.size_released - c.sent);
}

util::Rate coflowAggregateRate(const sim::SimView& view, const ActiveCoflow& group) {
  // The incremental engine maintains the aggregate; summing per-flow rates
  // is the fallback for legacy-engine and hand-assembled views.
  if (view.coflow_rates != nullptr) return (*view.coflow_rates)[group.coflow_index];
  util::Rate total = 0;
  for (const std::size_t fi : group.flow_indices) total += view.flow(fi).rate;
  return total;
}

}  // namespace aalo::sched
