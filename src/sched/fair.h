// Per-flow max-min fairness — the "TCP fair sharing" baseline (§7).
//
// Every active flow gets an equal-weight max-min fair share of the fabric,
// ignoring coflow boundaries entirely (Figure 1c).
#pragma once

#include "sched/common.h"

namespace aalo::sched {

class PerFlowFairScheduler final : public sim::Scheduler {
 public:
  std::string name() const override { return "per-flow-fair"; }

  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;

  /// The allocation depends only on the active-flow set, which the engine
  /// already tracks via the index epoch — a constant epoch opts into rate
  /// reuse whenever membership is unchanged.
  std::uint64_t scheduleEpoch(const sim::SimView& view) override {
    (void)view;
    return 1;
  }

 private:
  fabric::MaxMinScratch scratch_;
};

}  // namespace aalo::sched
