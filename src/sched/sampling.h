// Sampling-based coflow scheduling (learn sizes by probing, then SEBF).
//
// Non-clairvoyant like Aalo, but instead of inferring priority from
// attained service alone it *learns* each coflow's size: a small probe
// subset of every coflow's flows is pushed to completion first, and the
// coflow's total size is estimated as the scaled mean of the completed
// probe sizes (a completed flow's attained service equals its size, so
// the estimate never reads ground-truth `size` — see state.h's
// non-clairvoyance discipline). Once a coflow's estimate matures it is
// scheduled smallest-estimated-bottleneck-first, approximating Varys'
// SEBF without prior knowledge; while immature it degrades to LAS
// (least-attained-service) so probing cannot starve anyone.
//
// This follows the sampling-in-the-network line of work (Philae/Saath):
// probing a sublinear number of flows per coflow is enough to rank
// heavy-tailed coflows almost as well as an oracle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "coflow/ids.h"
#include "fabric/maxmin.h"
#include "sched/common.h"
#include "sim/scheduler.h"
#include "util/units.h"

namespace aalo::sched {

struct SamplingConfig {
  /// Fraction of a coflow's flows used as probes (ceil(fraction * width),
  /// clamped to [min_probes, width]). 1.0 probes everything — the
  /// estimate becomes exact and the discipline converges to SEBF.
  double probe_fraction = 0.1;
  /// Probe at least this many flows regardless of width.
  std::size_t min_probes = 2;
  /// Re-decision quantum: orderings drift with attained service, so the
  /// scheduler asks to be re-run at this period even without arrivals.
  util::Seconds quantum = 1.0;
  /// Backfill leftover capacity across all active flows.
  bool work_conserving = true;
};

/// Estimate recorded when a coflow finishes — what the scheduler believed
/// versus what the coflow actually transferred. `mature` is false when
/// the coflow finished before all its probes completed (the estimate
/// field then holds the scaled mean over *completed* probes only, the
/// best guess available at that point).
struct SamplingEstimate {
  coflow::CoflowId id;
  bool mature = false;
  util::Bytes estimated = 0;
  util::Bytes actual = 0;  ///< Attained service at finish.
};

/// Sink for per-run estimate telemetry (aalo_sim --metrics-dump keeps
/// these alive past the batch runner's scheduler teardown).
struct SamplingTelemetry {
  std::vector<SamplingEstimate> finishes;
};

class SamplingScheduler final : public sim::Scheduler {
 public:
  explicit SamplingScheduler(SamplingConfig config = {}) : config_(config) {}

  std::string name() const override { return "sampling"; }

  void reset(const fabric::Fabric& fabric) override;
  std::uint64_t scheduleEpoch(const sim::SimView& view) override;
  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  util::Seconds nextWakeup(const sim::SimView& view) override;
  void onCoflowFinished(const sim::SimView& view, std::size_t coflow_index) override;

  /// Number of probe flows for a coflow of `width` flows.
  std::size_t probeCount(std::size_t width) const;

  /// Current size estimate of coflow `coflow_index`: scaled mean of its
  /// *completed* probes. Returns the number of completed probes (the
  /// estimate is mature when this equals probeCount(width)); `*out` is
  /// meaningful only when at least one probe completed.
  std::size_t estimateTotal(const sim::SimView& view, std::size_t coflow_index,
                            util::Bytes* out) const;

  /// Estimates recorded at coflow completion (test introspection).
  const std::vector<SamplingEstimate>& finishLog() const { return finish_log_; }

  void setTelemetry(SamplingTelemetry* telemetry) { telemetry_ = telemetry; }

 private:
  /// Partitions the active coflows into mature (sorted by estimated
  /// bottleneck, then id) and immature (sorted by attained service, then
  /// id — LAS). Pure function of the view; both allocate() and
  /// scheduleEpoch() call it.
  void classify(const sim::SimView& view);

  /// Estimated effective-bottleneck seconds of a mature coflow: its
  /// estimated remaining bytes spread evenly over its active flows,
  /// summed per port against port capacity.
  util::Seconds estimatedBottleneck(const sim::SimView& view,
                                    const ActiveCoflow& group,
                                    util::Bytes est_total);

  SamplingConfig config_;

  // Classification output: indices into the activeGroups() span.
  std::vector<std::size_t> mature_order_;
  std::vector<std::size_t> immature_order_;

  std::vector<SamplingEstimate> finish_log_;
  SamplingTelemetry* telemetry_ = nullptr;

  // Scratch (capacity reuse across rounds).
  std::vector<ActiveCoflow> groups_scratch_;
  std::vector<util::Seconds> gamma_scratch_;
  std::vector<util::Bytes> port_in_scratch_;
  std::vector<util::Bytes> port_out_scratch_;
  ActiveCoflow subgroup_scratch_;
  std::vector<std::size_t> backfill_scratch_;
  fabric::MaxMinScratch scratch_;
};

}  // namespace aalo::sched
