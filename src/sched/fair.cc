#include "sched/fair.h"

namespace aalo::sched {

void PerFlowFairScheduler::allocate(const sim::SimView& view,
                                    std::vector<util::Rate>& rates) {
  fabric::ResidualCapacity residual(*view.fabric);
  backfillMaxMin(view, *view.active_flows, residual, rates, scratch_);
}

}  // namespace aalo::sched
