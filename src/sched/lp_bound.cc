#include "sched/lp_bound.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

namespace aalo::sched {

namespace {

/// Mirror of the engine's completion slack (sim/simulator.cc): a flow
/// snaps to done within slackFor(size) bytes of its size, so a sound
/// lower bound may only charge the bytes a schedule must actually move.
util::Bytes effectiveBytes(util::Bytes size) {
  const util::Bytes slack = std::max(1e-3, 1e-9 * size);
  return std::max(0.0, size - slack);
}

/// Optimal preemptive sum of flow times (C_j - r_j) on one machine:
/// shortest-remaining-processing-time, which is exactly optimal for
/// 1 | r_j, pmtn | sum C_j.
util::Seconds srptTotalFlowTime(std::vector<std::pair<util::Seconds, util::Seconds>>& jobs) {
  // jobs: (release, processing). Sorted by release below.
  std::sort(jobs.begin(), jobs.end());
  std::priority_queue<util::Seconds, std::vector<util::Seconds>,
                      std::greater<util::Seconds>>
      remaining;
  util::Seconds t = 0;
  util::Seconds total_completion = 0;
  util::Seconds total_release = 0;
  std::size_t i = 0;
  for (const auto& [r, p] : jobs) total_release += r;
  while (i < jobs.size() || !remaining.empty()) {
    if (remaining.empty()) {
      t = std::max(t, jobs[i].first);
      remaining.push(jobs[i].second);
      ++i;
      continue;
    }
    const util::Seconds next_release =
        i < jobs.size() ? jobs[i].first : std::numeric_limits<util::Seconds>::infinity();
    const util::Seconds rem = remaining.top();
    if (t + rem <= next_release) {
      remaining.pop();
      t += rem;
      total_completion += t;
    } else {
      remaining.pop();
      remaining.push(rem - (next_release - t));
      t = next_release;
      remaining.push(jobs[i].second);
      ++i;
    }
  }
  return total_completion - total_release;
}

}  // namespace

LpBoundResult computeCctLowerBound(const coflow::Workload& workload,
                                   const fabric::FabricConfig& config) {
  LpBoundResult result;
  const fabric::Fabric fabric(config);
  const auto ports = static_cast<std::size_t>(fabric.numPorts());
  const std::size_t machines = 2 * ports;  // [0,P) ingress, [P,2P) egress.
  auto capacity = [&](std::size_t m) {
    return m < ports ? fabric.ingressCapacity(static_cast<coflow::PortId>(m))
                     : fabric.egressCapacity(static_cast<coflow::PortId>(m - ports));
  };

  // Per-machine relaxed jobs: (release, processing seconds) plus the
  // isolated time of the contributing coflow (subtracted from the
  // everyone-else term below).
  std::vector<std::vector<std::pair<util::Seconds, util::Seconds>>> machine_jobs(
      machines);
  std::vector<util::Seconds> machine_iso(machines, 0.0);

  std::vector<util::Bytes> load(machines, 0.0);
  std::vector<std::size_t> touched;
  for (const coflow::JobSpec& job : workload.jobs) {
    for (const coflow::CoflowSpec& spec : job.coflows) {
      ++result.num_coflows;
      const util::Seconds release = job.arrival + spec.arrival_offset;
      // A Starts-After barrier makes the true release schedule-dependent
      // (>= this instant); such coflows contribute isolation only.
      const bool release_known = spec.starts_after.empty();

      touched.clear();
      util::Seconds iso = 0;
      for (const coflow::FlowSpec& f : spec.flows) {
        const util::Bytes b = effectiveBytes(f.bytes);
        const std::size_t src = static_cast<std::size_t>(f.src);
        const std::size_t dst = static_cast<std::size_t>(f.dst) + ports;
        if (load[src] == 0) touched.push_back(src);
        if (load[dst] == 0) touched.push_back(dst);
        load[src] += b;
        load[dst] += b;
        // Even alone on the fabric, this flow cannot finish before its
        // own start offset plus its line-rate transfer time.
        iso = std::max(iso, f.start_offset +
                                b / std::min(capacity(src), capacity(dst)));
      }
      for (const std::size_t m : touched) {
        iso = std::max(iso, load[m] / capacity(m));
      }
      result.isolation_total += iso;
      for (const std::size_t m : touched) {
        if (release_known && load[m] > 0) {
          machine_jobs[m].emplace_back(release, load[m] / capacity(m));
          machine_iso[m] += iso;
        }
        load[m] = 0;  // Reset for the next coflow.
      }
    }
  }

  for (std::size_t m = 0; m < machines; ++m) {
    if (machine_jobs[m].empty()) continue;
    // SRPT lower-bounds the summed CCTs of the coflows loading machine m;
    // everyone else still pays at least their isolated time.
    const util::Seconds bound = srptTotalFlowTime(machine_jobs[m]) +
                                (result.isolation_total - machine_iso[m]);
    result.best_machine = std::max(result.best_machine, bound);
  }
  result.total_cct = std::max(result.isolation_total, result.best_machine);
  return result;
}

double boundRatio(util::Seconds achieved_total_cct, const LpBoundResult& bound) {
  if (bound.total_cct <= 0) return 1.0;
  return achieved_total_cct / bound.total_cct;
}

}  // namespace aalo::sched
