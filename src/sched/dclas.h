// Discretized Coflow-Aware Least-Attained Service — the paper's core
// contribution (§4), as deployed in Aalo.
//
// Coflows live in K priority queues. Queue i holds coflows whose
// *coordinator-known* attained service lies in [Q_i^lo, Q_i^hi) with
// exponentially spaced thresholds Q_{i+1}^hi = E * Q_i^hi. Across queues:
// weighted fair sharing (weights decrease with priority) for starvation
// freedom; within a queue: FIFO by CoflowId; within a coflow: max-min fair
// flows. Unused capacity is redistributed in priority order (the paper's
// excess policy).
//
// Coordination (§6.2): with sync_interval Δ > 0 the scheduler only learns
// global attained sizes at multiples of Δ, so queue demotions take effect
// at the first sync boundary after the coflow's true size crosses a
// threshold — exactly how the Aalo coordinator behaves. Newly arrived
// coflows are placed in the highest-priority queue immediately (local
// decision, no coordination needed). Δ = 0 models instant coordination.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/common.h"

namespace aalo::sched {

struct DClasConfig {
  /// Number of priority queues K (>= 1). Ignored when explicit_thresholds
  /// is non-empty.
  int num_queues = 10;
  /// Multiplicative threshold spacing E (> 1).
  double exp_factor = 10.0;
  /// Q1^hi — coflows below this never need coordination.
  util::Bytes first_threshold = 10 * util::kMB;
  /// Coordination interval Δ. 0 = instant (idealized) coordination.
  util::Seconds sync_interval = 0;
  /// Across-queue discipline. The paper uses weighted sharing to avoid
  /// starvation; strict priority is the ablation variant.
  enum class QueuePolicy { kWeightedFair, kStrictPriority };
  QueuePolicy policy = QueuePolicy::kWeightedFair;
  /// Explicit queue upper thresholds (ascending, last queue implicit at
  /// infinity). Overrides num_queues/exp_factor/first_threshold — used by
  /// the equal-sized-queue sensitivity experiment (Fig 12d).
  std::vector<util::Bytes> explicit_thresholds;

  /// Queue weight for 0-based queue q: the paper evaluates
  /// Q_i.weight = K - i + 1 (§7.1).
  double queueWeight(int q) const;
  /// Upper threshold of 0-based queue q (infinity for the last queue).
  std::vector<util::Bytes> thresholds() const;
};

class DClasScheduler final : public sim::Scheduler {
 public:
  explicit DClasScheduler(DClasConfig config = {});

  std::string name() const override;

  void reset(const fabric::Fabric& fabric) override;
  void onCoflowFinished(const sim::SimView& view, std::size_t coflow_index) override;
  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  util::Seconds nextWakeup(const sim::SimView& view) override;

  /// Queue a coflow with the given known size would occupy (0-based).
  int queueOf(util::Bytes known_size) const;

  const DClasConfig& config() const { return config_; }

  /// Replaces the queue thresholds at runtime (ascending, one fewer than
  /// the number of queues). Used by the adaptive-threshold extension
  /// (§8); coflows are re-binned on the next allocation round.
  void setThresholds(std::vector<util::Bytes> thresholds);
  const std::vector<util::Bytes>& thresholds() const { return thresholds_; }

 private:
  /// Coordinator-known attained size of a coflow (0 for never-synced).
  util::Bytes knownSize(std::size_t coflow_index) const;
  void maybeSync(const sim::SimView& view);

  DClasConfig config_;
  std::vector<util::Bytes> thresholds_;  ///< Size num_queues - 1.
  /// Attained sizes as of the last coordination round, indexed by coflow
  /// index (dense — coflow indices are small and stable within a run).
  std::vector<util::Bytes> known_sent_;
  /// Last applied sync boundary index (floor(now / Δ)); -1 before any.
  std::int64_t last_sync_boundary_ = -1;
  /// Reusable allocation-round buffers (hot path).
  fabric::MaxMinScratch scratch_;
  std::vector<ActiveCoflow> groups_scratch_;
  std::vector<std::vector<std::size_t>> queue_members_;
};

}  // namespace aalo::sched
