// Discretized Coflow-Aware Least-Attained Service — the paper's core
// contribution (§4), as deployed in Aalo.
//
// Coflows live in K priority queues. Queue i holds coflows whose
// *coordinator-known* attained service lies in [Q_i^lo, Q_i^hi) with
// exponentially spaced thresholds Q_{i+1}^hi = E * Q_i^hi. Across queues:
// weighted fair sharing (weights decrease with priority) for starvation
// freedom; within a queue: FIFO by CoflowId; within a coflow: max-min fair
// flows. Unused capacity is redistributed in priority order (the paper's
// excess policy).
//
// Coordination (§6.2): with sync_interval Δ > 0 the scheduler only learns
// global attained sizes at multiples of Δ, so queue demotions take effect
// at the first sync boundary after the coflow's true size crosses a
// threshold — exactly how the Aalo coordinator behaves. Newly arrived
// coflows are placed in the highest-priority queue immediately (local
// decision, no coordination needed). Δ = 0 models instant coordination.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sched/common.h"

namespace aalo::sched {

/// 0-based D-CLAS queue for an attained size given ascending upper
/// `thresholds` (one fewer than the number of queues; the last queue's
/// bound is implicit at infinity): the number of thresholds at or below
/// `size`, found with a binary search. Shared by the simulator scheduler,
/// the runtime coordinator, and the daemon's local fallback so all three
/// discretize identically.
int queueForSize(std::span<const util::Bytes> thresholds, util::Bytes size);

struct DClasConfig {
  /// Number of priority queues K (>= 1). Ignored when explicit_thresholds
  /// is non-empty.
  int num_queues = 10;
  /// Multiplicative threshold spacing E (> 1).
  double exp_factor = 10.0;
  /// Q1^hi — coflows below this never need coordination.
  util::Bytes first_threshold = 10 * util::kMB;
  /// Coordination interval Δ. 0 = instant (idealized) coordination.
  util::Seconds sync_interval = 0;
  /// Across-queue discipline. The paper uses weighted sharing to avoid
  /// starvation; strict priority is the ablation variant.
  enum class QueuePolicy { kWeightedFair, kStrictPriority };
  QueuePolicy policy = QueuePolicy::kWeightedFair;
  /// Explicit queue upper thresholds (ascending, last queue implicit at
  /// infinity). Overrides num_queues/exp_factor/first_threshold — used by
  /// the equal-sized-queue sensitivity experiment (Fig 12d).
  std::vector<util::Bytes> explicit_thresholds;

  /// Queue weight for 0-based queue q: the paper evaluates
  /// Q_i.weight = K - i + 1 (§7.1).
  double queueWeight(int q) const;
  /// Upper threshold of 0-based queue q (infinity for the last queue).
  std::vector<util::Bytes> thresholds() const;
};

/// One post-allocation snapshot of queue state. Recorded only while a
/// telemetry sink is attached (one branch per allocation round, nothing
/// per-increment), so production runs pay effectively nothing.
struct DClasQueueSample {
  util::Seconds now = 0;
  /// Coflows per queue (index = 0-based queue).
  std::vector<std::size_t> occupancy;
  /// Aggregate allocated rate per queue (sum over members' flows).
  std::vector<util::Rate> queue_rates;
  /// (coflow_index, queue) for every active coflow at this round.
  std::vector<std::pair<std::size_t, int>> coflow_queues;
};

/// Sample sink for the starvation-freedom / monotonicity invariant tests
/// and the aalo_sim per-queue occupancy metrics.
class DClasTelemetry {
 public:
  void record(DClasQueueSample sample) { samples_.push_back(std::move(sample)); }
  const std::vector<DClasQueueSample>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<DClasQueueSample> samples_;
};

class DClasScheduler final : public sim::Scheduler {
 public:
  explicit DClasScheduler(DClasConfig config = {});

  std::string name() const override;

  void reset(const fabric::Fabric& fabric) override;
  void onCoflowFinished(const sim::SimView& view, std::size_t coflow_index) override;
  void onFlowStarted(const sim::SimView& view, std::size_t flow_index) override;
  void onFlowCompleted(const sim::SimView& view, std::size_t flow_index) override;
  std::uint64_t scheduleEpoch(const sim::SimView& view) override;
  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  util::Seconds nextWakeup(const sim::SimView& view) override;

  /// Queue a coflow with the given known size would occupy (0-based).
  int queueOf(util::Bytes known_size) const;

  const DClasConfig& config() const { return config_; }

  /// Replaces the queue thresholds at runtime (ascending, one fewer than
  /// the number of queues). Used by the adaptive-threshold extension
  /// (§8); coflows are re-binned on the next allocation round.
  void setThresholds(std::vector<util::Bytes> thresholds);
  const std::vector<util::Bytes>& thresholds() const { return thresholds_; }

  /// Attaches (or detaches, with nullptr) a telemetry sink; every
  /// allocation round then records a DClasQueueSample after rates are
  /// installed. Not owned; must outlive the scheduler or be detached.
  void setTelemetry(DClasTelemetry* telemetry) { telemetry_ = telemetry; }

  // ---- Test support --------------------------------------------------
  /// Whether the persistent queue state currently mirrors `view`'s active
  /// index (established on the first allocate/scheduleEpoch against an
  /// index, kept in lockstep by the per-flow hooks).
  bool tracking(const sim::SimView& view) const;
  /// Incrementally maintained queue membership (coflow indices, FIFO
  /// order within each queue). Only meaningful while tracking.
  std::vector<std::vector<std::size_t>> queueSnapshot() const;
  /// Oracle: from-scratch partition + FIFO sort of `view`'s active
  /// coflows, exactly as the pre-incremental implementation rebuilt every
  /// round. Does not touch the persistent state.
  std::vector<std::vector<std::size_t>> referenceQueueSnapshot(
      const sim::SimView& view) const;

 private:
  /// Per-queue persistent state: FIFO-sorted membership plus the cached
  /// primary-pass output. A clean queue's cache replays bit-identically
  /// because all of its inputs (members, FIFO order, flow endpoints, fair
  /// share, fabric) are unchanged since it was recorded.
  struct QueueState {
    std::vector<std::size_t> members;  ///< Coflow indices, FIFO-sorted.
    bool dirty = true;
    /// Recorded primary-pass rate increments, in allocation order.
    std::vector<std::pair<std::size_t, util::Rate>> cached_rates;
    /// Leftover capacity slice after the primary pass.
    std::vector<util::Rate> left_in, left_out, left_up, left_down;
  };

  /// Coordinator-known attained size of a coflow (0 for never-synced).
  util::Bytes knownSize(std::size_t coflow_index) const;
  /// Updates known sizes (and, while tracking, applies the resulting
  /// queue demotions). Idempotent at a fixed view.now.
  void maybeSync(const sim::SimView& view);
  bool hookTrackable(const sim::SimView& view);
  void ensureTracking(const sim::SimView& view);
  void rebuildQueues(const sim::SimView& view);
  void insertTracked(const sim::SimView& view, std::size_t coflow_index);
  void removeTracked(std::size_t coflow_index);
  void maybeDemote(const sim::SimView& view, std::size_t coflow_index);
  void markQueueDirty(int q);
  void markAllDirty();
  /// True when every port some active flow demands has residual capacity
  /// at or below `drained`. Implies every active flow's available rate is
  /// negligible — safe to stop allocating (cheaper and far more effective
  /// than scanning *all* ports, which never drain in sparse phases).
  bool demandDrained(const fabric::ResidualCapacity& residual,
                     const std::vector<int>& in_demand,
                     const std::vector<int>& out_demand,
                     util::Rate drained) const;
  void countDemand(const sim::SimView& view, std::vector<int>& in_demand,
                   std::vector<int>& out_demand) const;
  /// Max-min over only the flows of `group` that could be given more
  /// than `drained` from `residual`. In greedy redistribution passes the
  /// residual is mostly drained, so restricting the water-filling to the
  /// few flows that can still gain (the rest would only receive FP dust)
  /// shrinks the dominant cost of a round. Skips the max-min call
  /// entirely when no flow qualifies.
  void allocateCoflowGainers(const sim::SimView& view, const ActiveCoflow& group,
                             fabric::ResidualCapacity& residual,
                             std::vector<util::Rate>& rates, util::Rate drained);
  void allocateWeighted(const sim::SimView& view, std::vector<util::Rate>& rates);
  void allocateStrict(const sim::SimView& view, std::vector<util::Rate>& rates);
  /// Pre-incremental full-rebuild allocation — the test oracle (same
  /// pattern as fabric::maxMinAllocateReference).
  void allocateReference(const sim::SimView& view, std::vector<util::Rate>& rates);
  /// Like allocateCoflowGainers but records each rate increment so a
  /// clean queue can replay them without re-running max-min.
  void allocateCoflowRecording(const sim::SimView& view, const ActiveCoflow& group,
                               fabric::ResidualCapacity& residual,
                               std::vector<util::Rate>& rates, util::Rate drained,
                               std::vector<std::pair<std::size_t, util::Rate>>& out);
  void recordTelemetry(const sim::SimView& view,
                       const std::vector<util::Rate>& rates);

  DClasConfig config_;
  std::vector<util::Bytes> thresholds_;  ///< Size num_queues - 1.
  /// Attained sizes as of the last coordination round, indexed by coflow
  /// index (dense — coflow indices are small and stable within a run).
  std::vector<util::Bytes> known_sent_;
  /// Last applied sync boundary index (floor(now / Δ)); -1 before any.
  std::int64_t last_sync_boundary_ = -1;

  // ---- Persistent queue state (incrementally maintained) -------------
  /// Index being tracked; null when the persistent state is stale and the
  /// next allocate/scheduleEpoch must rebuild.
  const sim::ActiveCoflowIndex* tracked_index_ = nullptr;
  std::uint64_t tracked_epoch_ = 0;
  std::vector<QueueState> queues_;
  std::vector<int> queue_of_;                   ///< Coflow -> queue, -1 inactive.
  std::vector<std::uint32_t> active_flows_of_;  ///< Coflow -> live flow count.
  /// Per-port counts of active flows demanding the port (drain check).
  std::vector<int> in_demand_, out_demand_;
  /// Bumped whenever anything the schedule depends on changes (queue
  /// structure, flow membership, thresholds, rebuilds). Returned from
  /// scheduleEpoch so the engine can reuse installed rates across rounds
  /// where it is unchanged.
  std::uint64_t schedule_epoch_ = 1;
  double cached_total_weight_ = -1.0;
  /// kEps * max ingress capacity, cached at reset(); -1 until seen.
  util::Rate drained_threshold_ = -1.0;
  DClasTelemetry* telemetry_ = nullptr;

  /// Reusable allocation-round buffers (hot path).
  fabric::MaxMinScratch scratch_;
  std::vector<std::size_t> gainers_scratch_;
  std::vector<ActiveCoflow> groups_scratch_;
  std::vector<std::vector<std::size_t>> queue_members_;
  std::vector<int> in_demand_scratch_, out_demand_scratch_;
  /// Reusable residual trackers (avoid four vector allocations per pass).
  fabric::ResidualCapacity residual_scratch_, leftover_scratch_;
};

}  // namespace aalo::sched
