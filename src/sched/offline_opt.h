// Offline approximation for the clairvoyant coflow scheduling problem —
// the paper's "how far are we from the optimal?" yardstick (§7.2.1).
//
// Coflow scheduling on a non-blocking fabric is concurrent open shop with
// coupled resources; ignoring the coupling, the sum of CCTs admits a
// 2-approximation [Mastrolilli et al., ORL 2010]. We implement the
// equivalent combinatorial primal-dual rule (later popularized by
// Sincronia's BSSI): repeatedly find the most-loaded port, send the
// largest weight-adjusted contributor on that port to the *back* of the
// order, discount weights, and recurse. The resulting permutation is then
// replayed with clairvoyant MADD rates and backfilling.
#pragma once

#include <unordered_map>

#include "coflow/spec.h"
#include "sched/common.h"

namespace aalo::sched {

/// Computes the 2-approximation permutation over all coflows in the
/// workload (0 = scheduled first). Ignores release dates, as the offline
/// bound does.
std::unordered_map<coflow::CoflowId, int> computeConcurrentOpenShopOrder(
    const coflow::Workload& workload);

/// Clairvoyant scheduler that serves coflows in a fixed precomputed order
/// with MADD rates and max-min backfill.
class OfflineOrderScheduler final : public sim::Scheduler {
 public:
  explicit OfflineOrderScheduler(std::unordered_map<coflow::CoflowId, int> order);

  std::string name() const override { return "offline-2approx"; }

  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;

 private:
  std::unordered_map<coflow::CoflowId, int> order_;
  fabric::MaxMinScratch scratch_;
  std::vector<ActiveCoflow> groups_scratch_;
  std::vector<const ActiveCoflow*> sorted_;
};

}  // namespace aalo::sched
