#include "sched/fifo_lm.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "coflow/ids.h"

namespace aalo::sched {

FifoLmScheduler::FifoLmScheduler(FifoLmConfig config) : config_(config) {}

void FifoLmScheduler::allocate(const sim::SimView& view, std::vector<util::Rate>& rates) {
  const auto ports = static_cast<std::size_t>(view.fabric->numPorts());

  // Per-port: coflows in FIFO order with their flows and local attained.
  struct PortCoflow {
    std::size_t coflow_index;
    util::Bytes local_sent = 0;
    std::vector<std::size_t> flow_indices;
  };
  std::vector<std::vector<PortCoflow>> per_port(ports);
  std::vector<std::unordered_map<std::size_t, std::size_t>> slot(ports);
  for (const std::size_t fi : *view.active_flows) {
    const sim::FlowState& f = view.flow(fi);
    const auto p = static_cast<std::size_t>(f.src);
    auto [it, inserted] = slot[p].try_emplace(f.coflow_index, per_port[p].size());
    if (inserted) per_port[p].push_back(PortCoflow{f.coflow_index, 0, {}});
    per_port[p][it->second].flow_indices.push_back(fi);
  }
  // Local attained service (includes finished flows of active coflows).
  for (const ActiveCoflow& group : activeGroups(view, groups_scratch_)) {
    const sim::CoflowState& c = view.coflow(group.coflow_index);
    for (const std::size_t fi : c.flow_indices) {
      const sim::FlowState& f = view.flow(fi);
      if (!f.started || f.sent <= 0) continue;
      const auto p = static_cast<std::size_t>(f.src);
      const auto it = slot[p].find(group.coflow_index);
      if (it != slot[p].end()) per_port[p][it->second].local_sent += f.sent;
    }
  }

  const coflow::CoflowIdFifoLess fifo_less;
  std::vector<fabric::Demand>& demands = scratch_.demands;
  demands.clear();
  std::vector<std::size_t> chosen;
  for (std::size_t p = 0; p < ports; ++p) {
    auto& queue = per_port[p];
    if (queue.empty()) continue;
    std::sort(queue.begin(), queue.end(), [&](const PortCoflow& a, const PortCoflow& b) {
      return fifo_less(view.coflow(a.coflow_index).id, view.coflow(b.coflow_index).id);
    });
    // Limited multiplexing: serve the FIFO prefix up to and including the
    // first light coflow; heavy head-of-line coflows share instead of
    // blocking.
    for (const PortCoflow& pc : queue) {
      for (const std::size_t fi : pc.flow_indices) {
        const sim::FlowState& f = view.flow(fi);
        demands.push_back(fabric::Demand{f.src, f.dst, 1.0, fabric::kUncapped});
        chosen.push_back(fi);
      }
      if (pc.local_sent < config_.heavy_threshold) break;  // First light one.
    }
  }

  fabric::ResidualCapacity residual(*view.fabric);
  const std::vector<util::Rate>& shares =
      fabric::maxMinAllocate(demands, residual, scratch_);
  for (std::size_t k = 0; k < chosen.size(); ++k) rates[chosen[k]] += shares[k];
  if (config_.work_conserving) {
    backfillMaxMin(view, *view.active_flows, residual, rates, scratch_);
  }
}

util::Seconds FifoLmScheduler::nextWakeup(const sim::SimView& view) {
  return view.now + config_.quantum;
}

}  // namespace aalo::sched
