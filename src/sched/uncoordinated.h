// Aalo without coordination — the "Uncoordinated Non-Clairvoyant" baseline
// of §7.2.1 and Figures 8/9.
//
// Each ingress port runs its own D-CLAS instance using only locally
// observed attained service: local queue assignment, FIFO within the
// local queue, weighted sharing across queues. Because a wide coflow's
// per-port sizes differ wildly, ports disagree about which queue a coflow
// belongs to; combined with FIFO's exclusivity inside a queue this
// produces convoy effects and stragglers — the Theorem A.1 pathology.
#pragma once

#include "sched/common.h"
#include "sched/dclas.h"

namespace aalo::sched {

class UncoordinatedDClasScheduler final : public sim::Scheduler {
 public:
  /// Uses the DClasConfig queue structure (thresholds apply to *local*
  /// attained service; sync_interval is ignored — there is no global
  /// anything here).
  explicit UncoordinatedDClasScheduler(DClasConfig config = {},
                                       util::Seconds quantum = 1.0);

  std::string name() const override { return "uncoordinated-dclas"; }

  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;
  util::Seconds nextWakeup(const sim::SimView& view) override;

 private:
  DClasConfig config_;
  std::vector<util::Bytes> thresholds_;
  util::Seconds quantum_;
  fabric::MaxMinScratch scratch_;
  std::vector<ActiveCoflow> groups_scratch_;
};

}  // namespace aalo::sched
