// Global FIFO — the Orchestra-style baseline (Chowdhury et al.,
// SIGCOMM'11) used in Figures 12d and 13.
//
// Coflows are served strictly in arrival order with centralized
// knowledge. In the paper's "FIFO without multiplexing" configuration the
// head coflow owns the fabric outright — inter-transfer FIFO, exactly one
// transfer at a time — which is optimal for light-tailed coflow sizes
// [25] but wastes ports the head does not touch. The work-conserving
// variant lets the head's leftovers spill to the next coflows in line
// without ever preempting.
#pragma once

#include "sched/common.h"

namespace aalo::sched {

struct FifoConfig {
  /// false = paper's "FIFO w/o multiplexing": only the head coflow sends.
  /// true  = leftovers spill over to later coflows (still no preemption).
  bool work_conserving_spillover = false;
};

class FifoScheduler final : public sim::Scheduler {
 public:
  FifoScheduler() = default;
  explicit FifoScheduler(FifoConfig config) : config_(config) {}

  std::string name() const override {
    return config_.work_conserving_spillover ? "fifo-spillover" : "fifo-orchestra";
  }

  void allocate(const sim::SimView& view, std::vector<util::Rate>& rates) override;

  /// Arrival order and release times are static per run, so the schedule
  /// depends only on membership — safe to reuse rates between membership
  /// changes.
  std::uint64_t scheduleEpoch(const sim::SimView& view) override {
    (void)view;
    return 1;
  }

 private:
  FifoConfig config_;
  fabric::MaxMinScratch scratch_;
  std::vector<ActiveCoflow> groups_scratch_;
  std::vector<const ActiveCoflow*> order_;
};

}  // namespace aalo::sched
