// Event-driven flow-level ("fluid") simulator.
//
// Rates are piecewise constant: the engine asks the scheduler for an
// allocation, computes the earliest next event (flow completion, coflow or
// wave arrival, Starts-After release, scheduler wake-up), integrates sent
// bytes up to it, and repeats. There is no fixed time step, so simulations
// are exact for schedulers whose decisions only change at events.
#pragma once

#include <cstddef>
#include <memory>

#include "coflow/spec.h"
#include "fabric/fabric.h"
#include "obs/metrics.h"
#include "sim/records.h"
#include "sim/scheduler.h"

namespace aalo::sim {

struct SimOptions {
  /// Verify on every round that the allocation respects port capacities
  /// and is non-negative (throws std::logic_error on violation).
  bool verify_allocations = false;
  /// Abort (throw std::runtime_error) after this many allocation rounds —
  /// a backstop against schedulers that starve flows or spin.
  std::size_t max_rounds = 20'000'000;
  /// Engine selection. The incremental engine (default) fuses the
  /// per-round scans, keeps a next-completion heap, and reuses installed
  /// rates across rounds via the Scheduler::scheduleEpoch handshake. The
  /// legacy engine re-allocates and rescans every round and never fires
  /// the per-flow scheduler hooks — it is retained as the equivalence
  /// oracle (tests/engine_equivalence_test.cc).
  bool incremental_engine = true;
  /// Observability: when set, engine totals and the CCT distribution are
  /// folded into this registry (aalo_sim_* families, scheduler-labeled)
  /// after the run — see sim/metrics.h. Not owned; the hot loop never
  /// touches it.
  obs::Registry* metrics = nullptr;
};

class Simulator {
 public:
  Simulator(fabric::FabricConfig fabric_config, Scheduler& scheduler,
            SimOptions options = {});

  /// Runs the workload to completion and returns per-coflow/per-job
  /// records. The workload is validated first. May be called repeatedly;
  /// every run is independent (the scheduler is reset).
  SimResult run(const coflow::Workload& workload);

 private:
  fabric::FabricConfig fabric_config_;
  Scheduler& scheduler_;
  SimOptions options_;
};

/// One-shot convenience wrapper.
SimResult runSimulation(const coflow::Workload& workload,
                        fabric::FabricConfig fabric_config, Scheduler& scheduler,
                        SimOptions options = {});

}  // namespace aalo::sim
