// Scheduler interface for the flow-level simulator.
//
// On every allocation round the engine presents the current SimView and a
// rate vector (indexed by flow index); the scheduler fills in rates for
// active flows. Rates of inactive flows are ignored. A scheduler may also
// request wake-ups (sync ticks, queue-threshold crossings, decision
// quanta) via nextWakeup().
#pragma once

#include <string>
#include <vector>

#include "fabric/fabric.h"
#include "sim/state.h"
#include "util/units.h"

namespace aalo::sim {

/// Read-only snapshot handed to schedulers on every allocation round.
struct SimView {
  util::Seconds now = 0;
  const fabric::Fabric* fabric = nullptr;
  const std::vector<CoflowState>* coflows = nullptr;
  const std::vector<FlowState>* flows = nullptr;
  /// Indices (into *flows) of started, unfinished flows.
  const std::vector<std::size_t>* active_flows = nullptr;
  /// Active flows grouped by coflow, maintained incrementally by the
  /// engine (null for hand-assembled views; schedulers fall back to
  /// rebuilding the grouping — see sched::activeGroups).
  const ActiveCoflowIndex* active_index = nullptr;

  const CoflowState& coflow(std::size_t i) const { return (*coflows)[i]; }
  const FlowState& flow(std::size_t i) const { return (*flows)[i]; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Called once before a run; schedulers reset any cross-run state.
  virtual void reset(const fabric::Fabric& fabric) { (void)fabric; }

  /// Lifecycle notifications (optional).
  virtual void onCoflowReleased(const SimView& view, std::size_t coflow_index) {
    (void)view;
    (void)coflow_index;
  }
  virtual void onCoflowFinished(const SimView& view, std::size_t coflow_index) {
    (void)view;
    (void)coflow_index;
  }

  /// Fills `rates[f]` (bytes/s) for every f in *view.active_flows. The
  /// engine pre-zeroes active entries. The allocation must respect port
  /// capacities; the engine verifies this in debug builds.
  virtual void allocate(const SimView& view, std::vector<util::Rate>& rates) = 0;

  /// Next time strictly after view.now at which this scheduler wants to
  /// re-run even if no arrival/completion occurs (coordination tick,
  /// queue-threshold crossing, LAS decision quantum). kInfTime if none.
  virtual util::Seconds nextWakeup(const SimView& view) {
    (void)view;
    return kInfTime;
  }
};

}  // namespace aalo::sim
