// Scheduler interface for the flow-level simulator.
//
// On every allocation round the engine presents the current SimView and a
// rate vector (indexed by flow index); the scheduler fills in rates for
// active flows. Rates of inactive flows are ignored. A scheduler may also
// request wake-ups (sync ticks, queue-threshold crossings, decision
// quanta) via nextWakeup().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/fabric.h"
#include "sim/state.h"
#include "util/units.h"

namespace aalo::sim {

/// Read-only snapshot handed to schedulers on every allocation round.
struct SimView {
  util::Seconds now = 0;
  const fabric::Fabric* fabric = nullptr;
  const std::vector<CoflowState>* coflows = nullptr;
  /// Struct-of-arrays flow store; hot paths read its columns directly
  /// (flows->src_port[i], flows->sent_bytes[i], ...).
  const FlowArena* flows = nullptr;
  /// Indices (into *flows) of started, unfinished flows.
  const std::vector<std::size_t>* active_flows = nullptr;
  /// Active flows grouped by coflow, maintained incrementally by the
  /// engine (null for hand-assembled views; schedulers fall back to
  /// rebuilding the grouping — see sched::activeGroups).
  const ActiveCoflowIndex* active_index = nullptr;
  /// Per-coflow aggregate installed rate (bytes/s), maintained by the
  /// incremental engine (null otherwise). During allocate()/lifecycle
  /// hooks it holds the *previous* round's installed rates — exactly what
  /// sync back-dating wants; during nextWakeup() the just-installed ones.
  const std::vector<util::Rate>* coflow_rates = nullptr;

  const CoflowState& coflow(std::size_t i) const { return (*coflows)[i]; }
  /// Value snapshot of flow `i`, gathered from the arena columns. Callers
  /// binding `const FlowState& f = view.flow(i)` keep compiling via
  /// lifetime extension; per-field column reads are cheaper in hot loops.
  FlowState flow(std::size_t i) const { return flows->get(i); }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Called once before a run; schedulers reset any cross-run state.
  virtual void reset(const fabric::Fabric& fabric) { (void)fabric; }

  /// Lifecycle notifications (optional).
  virtual void onCoflowReleased(const SimView& view, std::size_t coflow_index) {
    (void)view;
    (void)coflow_index;
  }
  virtual void onCoflowFinished(const SimView& view, std::size_t coflow_index) {
    (void)view;
    (void)coflow_index;
  }

  /// Per-flow notifications, fired by the incremental engine immediately
  /// after the corresponding ActiveCoflowIndex mutation (the legacy
  /// engine never calls them). Stateful schedulers use them to maintain
  /// persistent per-round structures; the hook sequence tracks the index
  /// epoch one bump at a time.
  virtual void onFlowStarted(const SimView& view, std::size_t flow_index) {
    (void)view;
    (void)flow_index;
  }
  virtual void onFlowCompleted(const SimView& view, std::size_t flow_index) {
    (void)view;
    (void)flow_index;
  }

  /// Allocation-reuse handshake. Returns an opaque epoch identifying the
  /// *schedule* this scheduler would produce right now; the engine skips
  /// allocate() (and keeps the installed rates) on a round where both the
  /// active-flow membership epoch and this value are unchanged since the
  /// last install. 0 (the default) means "never reuse".
  ///
  /// Contract for implementers:
  ///  - Must be idempotent at a fixed view.now (the engine may call it
  ///    both before and after allocate() in one round).
  ///  - May apply internal state transitions (e.g. D-CLAS sync-boundary
  ///    demotions) — this is *the* per-round classification point.
  ///  - On rounds the engine ends up reusing, per-flow `sent` may be
  ///    stale (it is only materialized at install rounds); per-coflow
  ///    `sent`, all rates, and the membership index are always current.
  ///    Only opt in (return non-zero) if allocate() depends on nothing
  ///    beyond those fields and static flow data.
  virtual std::uint64_t scheduleEpoch(const SimView& view) {
    (void)view;
    return 0;
  }

  /// Fills `rates[f]` (bytes/s) for every f in *view.active_flows. The
  /// engine pre-zeroes active entries. The allocation must respect port
  /// capacities; the engine verifies this in debug builds.
  virtual void allocate(const SimView& view, std::vector<util::Rate>& rates) = 0;

  /// Coflows this scheduler's admission control decided to reject
  /// (deadline-aware disciplines only; everyone else reports 0). Purely
  /// informational: rejected coflows still receive background service so
  /// every run terminates — the engine copies this into
  /// SimResult::rejected_coflows after the run.
  virtual std::size_t rejectedCoflows() const { return 0; }

  /// Next time strictly after view.now at which this scheduler wants to
  /// re-run even if no arrival/completion occurs (coordination tick,
  /// queue-threshold crossing, LAS decision quantum). kInfTime if none.
  virtual util::Seconds nextWakeup(const SimView& view) {
    (void)view;
    return kInfTime;
  }
};

}  // namespace aalo::sim
