// Thread-pool runner for independent simulations.
//
// Every experiment in the paper is a sweep: the same workload under
// several schedulers (Fig 5, 8), or the same scheduler across a parameter
// grid (Fig 12, 14b). The runs share nothing mutable — each gets its own
// Scheduler instance (built by a per-job factory) and its own Simulator —
// so they parallelize trivially. BatchRunner executes them on a small
// thread pool and returns results in submission order, making the output
// byte-identical to a serial loop regardless of thread count or
// completion order.
//
// Sharing contract: jobs may share *immutable* inputs (the Workload is
// held by pointer and only read; FabricConfig is copied). Everything
// mutable — the scheduler and all engine state — is created inside the
// worker, after the job is claimed, so no synchronization is needed
// beyond the job-claim counter and the completion callback lock.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coflow/spec.h"
#include "fabric/fabric.h"
#include "sim/records.h"
#include "sim/simulator.h"

namespace aalo::sim {

/// One independent simulation: (scheduler factory x workload x fabric).
struct BatchJob {
  /// Shown in progress callbacks; defaults to the scheduler's name().
  std::string label;
  /// Not owned; must outlive the batch. Jobs may share one workload.
  const coflow::Workload* workload = nullptr;
  fabric::FabricConfig fabric;
  /// Called once, inside the worker thread, to build this run's private
  /// scheduler. Must be callable from any thread (it only runs once).
  std::function<std::unique_ptr<Scheduler>()> make_scheduler;
  SimOptions options;
};

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (no pool).
  int num_threads = 0;
  /// Optional per-completion hook (progress reporting). Called under a
  /// lock — invocations are serialized but NOT in submission order.
  std::function<void(std::size_t index, const BatchJob& job,
                     const SimResult& result, double wall_seconds)>
      on_done;
  /// Observability: when set, every job's result is folded into this
  /// registry (sim::recordSimResult) after the pool drains, in submission
  /// order. Leave the jobs' own SimOptions::metrics null to avoid double
  /// counting.
  obs::Registry* metrics = nullptr;
};

/// Runs every job and returns results indexed exactly like `jobs`.
/// If a job throws, the first exception (in submission order) is
/// rethrown after all workers have drained.
std::vector<SimResult> runBatch(const std::vector<BatchJob>& jobs,
                                const BatchOptions& options = {});

}  // namespace aalo::sim
