// Runtime state of a flow-level simulation.
//
// Ground truth lives here. Schedulers receive a read-only SimView of it;
// *non-clairvoyant* schedulers must not read FlowState::size,
// CoflowState::size_released or any other forward-looking field — only
// attained service (`sent`). This discipline is checked behaviourally in
// tests (a non-clairvoyant scheduler's allocation must be invariant to
// remaining sizes).
#pragma once

#include <limits>
#include <vector>

#include "coflow/ids.h"
#include "coflow/spec.h"
#include "util/units.h"

namespace aalo::sim {

inline constexpr util::Seconds kInfTime = std::numeric_limits<util::Seconds>::infinity();

struct FlowState {
  coflow::FlowId id = 0;
  std::size_t coflow_index = 0;  ///< Index into SimView::coflows.
  coflow::PortId src = 0;
  coflow::PortId dst = 0;
  util::Bytes size = 0;  ///< Ground truth; clairvoyant schedulers only.
  util::Bytes sent = 0;
  util::Seconds release_time = kInfTime;  ///< Absolute time the flow appears.
  bool started = false;
  bool done = false;
  util::Rate rate = 0;  ///< Current allocation (engine-owned).
};

struct CoflowState {
  coflow::CoflowId id;
  coflow::JobId job = 0;
  /// Requested start: job arrival + coflow arrival offset.
  util::Seconds spec_arrival = 0;
  /// Actual start once Starts-After parents finished; kInfTime until then.
  util::Seconds release_time = kInfTime;
  bool released = false;
  bool done = false;
  util::Seconds finish_time = -1;  ///< Own flows all done; -1 while running.

  std::vector<std::size_t> flow_indices;  ///< All flows (incl. future waves).
  std::size_t flows_done = 0;

  /// Ground-truth attained service across the whole fabric. This is the
  /// one quantity CLAS/D-CLAS is allowed to know (via coordination).
  util::Bytes sent = 0;
  /// Ground-truth total of *started* flows. Clairvoyant-only.
  util::Bytes size_released = 0;

  bool finished() const { return done; }
};

}  // namespace aalo::sim
