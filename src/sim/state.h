// Runtime state of a flow-level simulation.
//
// Ground truth lives here. Schedulers receive a read-only SimView of it;
// *non-clairvoyant* schedulers must not read FlowState::size,
// CoflowState::size_released or any other forward-looking field — only
// attained service (`sent`). This discipline is checked behaviourally in
// tests (a non-clairvoyant scheduler's allocation must be invariant to
// remaining sizes).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "coflow/ids.h"
#include "coflow/spec.h"
#include "util/units.h"

namespace aalo::sim {

inline constexpr util::Seconds kInfTime = std::numeric_limits<util::Seconds>::infinity();

/// Value snapshot of one flow. Since the SoA refactor this is a *view*
/// type: per-flow ground truth lives in FlowArena's contiguous columns,
/// and SimView::flow() gathers a FlowState on demand. It doubles as the
/// builder type for hand-assembled arenas (tests, benches).
struct FlowState {
  coflow::FlowId id = 0;
  std::size_t coflow_index = 0;  ///< Index into SimView::coflows.
  coflow::PortId src = 0;
  coflow::PortId dst = 0;
  util::Bytes size = 0;  ///< Ground truth; clairvoyant schedulers only.
  util::Bytes sent = 0;
  util::Seconds release_time = kInfTime;  ///< Absolute time the flow appears.
  bool started = false;
  bool done = false;
  util::Rate rate = 0;  ///< Current allocation (engine-owned).
};

/// Struct-of-arrays flow store. One entry per flow, indexed by flow index;
/// each field is its own contiguous column so the engine's integration
/// sweep and the schedulers' demand-building loops read dense memory the
/// compiler can keep in vector registers. `remaining` is deliberately not
/// materialized: it is always computed as `size_bytes[i] - sent_bytes[i]`,
/// the exact expression the pre-SoA engine used, so trajectories stay
/// bitwise-comparable with the legacy oracle.
struct FlowArena {
  std::vector<coflow::FlowId> id;
  std::vector<std::uint32_t> coflow_of;  ///< Index into SimView::coflows.
  std::vector<coflow::PortId> src_port;
  std::vector<coflow::PortId> dst_port;
  std::vector<util::Bytes> size_bytes;  ///< Ground truth; clairvoyant only.
  std::vector<util::Bytes> sent_bytes;
  std::vector<util::Seconds> release_time;
  std::vector<util::Rate> rate;  ///< Current allocation (engine-owned).
  std::vector<std::uint8_t> started;
  std::vector<std::uint8_t> done;

  std::size_t size() const { return src_port.size(); }
  bool empty() const { return src_port.empty(); }

  void clear() {
    id.clear();
    coflow_of.clear();
    src_port.clear();
    dst_port.clear();
    size_bytes.clear();
    sent_bytes.clear();
    release_time.clear();
    rate.clear();
    started.clear();
    done.clear();
  }

  /// Appends a flow from its value snapshot; returns the new flow index.
  std::size_t push(const FlowState& f) {
    const std::size_t i = size();
    id.push_back(f.id);
    coflow_of.push_back(static_cast<std::uint32_t>(f.coflow_index));
    src_port.push_back(f.src);
    dst_port.push_back(f.dst);
    size_bytes.push_back(f.size);
    sent_bytes.push_back(f.sent);
    release_time.push_back(f.release_time);
    rate.push_back(f.rate);
    started.push_back(f.started ? 1 : 0);
    done.push_back(f.done ? 1 : 0);
    return i;
  }

  /// Gathers flow `i` into a value snapshot (cold paths; hot loops read
  /// the columns directly).
  FlowState get(std::size_t i) const {
    FlowState f;
    f.id = id[i];
    f.coflow_index = coflow_of[i];
    f.src = src_port[i];
    f.dst = dst_port[i];
    f.size = size_bytes[i];
    f.sent = sent_bytes[i];
    f.release_time = release_time[i];
    f.started = started[i] != 0;
    f.done = done[i] != 0;
    f.rate = rate[i];
    return f;
  }
};

struct CoflowState {
  coflow::CoflowId id;
  coflow::JobId job = 0;
  /// Requested start: job arrival + coflow arrival offset.
  util::Seconds spec_arrival = 0;
  /// Actual start once Starts-After parents finished; kInfTime until then.
  util::Seconds release_time = kInfTime;
  bool released = false;
  bool done = false;
  util::Seconds finish_time = -1;  ///< Own flows all done; -1 while running.
  /// Completion deadline relative to release (0 = none). Copied from the
  /// spec; deadline-aware schedulers read it through the view.
  util::Seconds deadline = 0;

  std::vector<std::size_t> flow_indices;  ///< All flows (incl. future waves).
  std::size_t flows_done = 0;

  /// Ground-truth attained service across the whole fabric. This is the
  /// one quantity CLAS/D-CLAS is allowed to know (via coordination).
  util::Bytes sent = 0;
  /// Ground-truth total of *started* flows. Clairvoyant-only.
  util::Bytes size_released = 0;

  bool finished() const { return done; }

  /// Absolute deadline instant; kInfTime when the coflow has no deadline
  /// or is not yet released (the deadline clock starts at release).
  util::Seconds absoluteDeadline() const {
    return (deadline > 0 && released) ? release_time + deadline : kInfTime;
  }
};

/// One coflow together with its currently active (started, unfinished)
/// flows. The grouping every scheduler discipline starts from.
///
/// `srcs`/`dsts` mirror flow_indices element-for-element: schedulers'
/// innermost loops (demand building, gainers filtering) need each flow's
/// endpoints, and gathering them through the arena costs one scattered
/// load per port per flow per round. Packing them here turns those loops
/// into dense sequential reads; the index maintains the alignment on
/// every add/remove.
struct ActiveGroup {
  std::size_t coflow_index = 0;
  std::vector<std::size_t> flow_indices;
  std::vector<coflow::PortId> srcs;  ///< srcs[k] = src port of flow_indices[k].
  std::vector<coflow::PortId> dsts;  ///< dsts[k] = dst port of flow_indices[k].
};

/// Incrementally maintained grouping of active flows by coflow. The
/// engine updates it on every flow release and completion, so schedulers
/// read the grouping in O(1) instead of rebuilding a hash map per round
/// (previously twice per round: allocate + nextWakeup).
///
/// Group order is deterministic — activation order, compacted by
/// swap-removal when a coflow's last active flow finishes — but NOT
/// meaningful; disciplines that care about order sort by their own key,
/// exactly as they did over groupActiveByCoflow() output.
class ActiveCoflowIndex {
 public:
  const std::vector<ActiveGroup>& groups() const { return groups_; }

  /// The group of a coflow's active flows, or null if it has none.
  const ActiveGroup* groupFor(std::size_t coflow_index) const {
    const std::size_t g =
        coflow_index < group_of_.size() ? group_of_[coflow_index] : kNone;
    return g == kNone ? nullptr : &groups_[g];
  }

  /// Bumped on every membership change; lets consumers cache per-round
  /// derived state keyed on (index identity, epoch).
  std::uint64_t epoch() const { return epoch_; }

  /// Resets for a run over `num_coflows` coflows and `num_flows` flows.
  void reset(std::size_t num_coflows, std::size_t num_flows) {
    groups_.clear();
    group_of_.assign(num_coflows, kNone);
    pos_of_.assign(num_flows, kNone);
    ++epoch_;
  }

  void addFlow(std::size_t coflow_index, std::size_t flow_index, coflow::PortId src,
               coflow::PortId dst) {
    std::size_t g = group_of_[coflow_index];
    if (g == kNone) {
      g = groups_.size();
      group_of_[coflow_index] = g;
      if (spare_.empty()) {
        groups_.push_back(ActiveGroup{coflow_index, {}, {}, {}});
      } else {
        // Recycle a retired group to keep its vectors' capacity.
        spare_.back().coflow_index = coflow_index;
        groups_.push_back(std::move(spare_.back()));
        spare_.pop_back();
      }
    }
    pos_of_[flow_index] = groups_[g].flow_indices.size();
    groups_[g].flow_indices.push_back(flow_index);
    groups_[g].srcs.push_back(src);
    groups_[g].dsts.push_back(dst);
    ++epoch_;
  }

  void removeFlow(std::size_t coflow_index, std::size_t flow_index) {
    const std::size_t g = group_of_[coflow_index];
    ActiveGroup& group = groups_[g];
    std::vector<std::size_t>& members = group.flow_indices;
    const std::size_t pos = pos_of_[flow_index];
    pos_of_[flow_index] = kNone;
    members[pos] = members.back();
    members.pop_back();
    group.srcs[pos] = group.srcs.back();
    group.srcs.pop_back();
    group.dsts[pos] = group.dsts.back();
    group.dsts.pop_back();
    if (pos < members.size()) pos_of_[members[pos]] = pos;
    if (members.empty()) {
      spare_.push_back(std::move(group));
      group_of_[coflow_index] = kNone;
      if (g + 1 != groups_.size()) {
        groups_[g] = std::move(groups_.back());
        group_of_[groups_[g].coflow_index] = g;
      }
      groups_.pop_back();
    }
    ++epoch_;
  }

  /// Rebuilds from scratch — for hand-assembled views (tests, micro
  /// benches) that never go through the engine's event loop.
  void rebuild(const FlowArena& flows, const std::vector<std::size_t>& active) {
    std::size_t num_coflows = 0;
    for (const std::uint32_t ci : flows.coflow_of) {
      num_coflows = std::max(num_coflows, static_cast<std::size_t>(ci) + 1);
    }
    reset(num_coflows, flows.size());
    for (const std::size_t fi : active) {
      addFlow(flows.coflow_of[fi], fi, flows.src_port[fi], flows.dst_port[fi]);
    }
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::vector<ActiveGroup> groups_;
  std::vector<std::size_t> group_of_;  ///< coflow index -> slot in groups_.
  std::vector<std::size_t> pos_of_;    ///< flow index -> slot in its group.
  std::vector<ActiveGroup> spare_;     ///< Retired groups (capacity reuse).
  std::uint64_t epoch_ = 0;
};

}  // namespace aalo::sim
