// Runtime state of a flow-level simulation.
//
// Ground truth lives here. Schedulers receive a read-only SimView of it;
// *non-clairvoyant* schedulers must not read FlowState::size,
// CoflowState::size_released or any other forward-looking field — only
// attained service (`sent`). This discipline is checked behaviourally in
// tests (a non-clairvoyant scheduler's allocation must be invariant to
// remaining sizes).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "coflow/ids.h"
#include "coflow/spec.h"
#include "util/units.h"

namespace aalo::sim {

inline constexpr util::Seconds kInfTime = std::numeric_limits<util::Seconds>::infinity();

struct FlowState {
  coflow::FlowId id = 0;
  std::size_t coflow_index = 0;  ///< Index into SimView::coflows.
  coflow::PortId src = 0;
  coflow::PortId dst = 0;
  util::Bytes size = 0;  ///< Ground truth; clairvoyant schedulers only.
  util::Bytes sent = 0;
  util::Seconds release_time = kInfTime;  ///< Absolute time the flow appears.
  bool started = false;
  bool done = false;
  util::Rate rate = 0;  ///< Current allocation (engine-owned).
};

struct CoflowState {
  coflow::CoflowId id;
  coflow::JobId job = 0;
  /// Requested start: job arrival + coflow arrival offset.
  util::Seconds spec_arrival = 0;
  /// Actual start once Starts-After parents finished; kInfTime until then.
  util::Seconds release_time = kInfTime;
  bool released = false;
  bool done = false;
  util::Seconds finish_time = -1;  ///< Own flows all done; -1 while running.

  std::vector<std::size_t> flow_indices;  ///< All flows (incl. future waves).
  std::size_t flows_done = 0;

  /// Ground-truth attained service across the whole fabric. This is the
  /// one quantity CLAS/D-CLAS is allowed to know (via coordination).
  util::Bytes sent = 0;
  /// Ground-truth total of *started* flows. Clairvoyant-only.
  util::Bytes size_released = 0;

  bool finished() const { return done; }
};

/// One coflow together with its currently active (started, unfinished)
/// flows. The grouping every scheduler discipline starts from.
struct ActiveGroup {
  std::size_t coflow_index = 0;
  std::vector<std::size_t> flow_indices;
};

/// Incrementally maintained grouping of active flows by coflow. The
/// engine updates it on every flow release and completion, so schedulers
/// read the grouping in O(1) instead of rebuilding a hash map per round
/// (previously twice per round: allocate + nextWakeup).
///
/// Group order is deterministic — activation order, compacted by
/// swap-removal when a coflow's last active flow finishes — but NOT
/// meaningful; disciplines that care about order sort by their own key,
/// exactly as they did over groupActiveByCoflow() output.
class ActiveCoflowIndex {
 public:
  const std::vector<ActiveGroup>& groups() const { return groups_; }

  /// The group of a coflow's active flows, or null if it has none.
  const ActiveGroup* groupFor(std::size_t coflow_index) const {
    const std::size_t g =
        coflow_index < group_of_.size() ? group_of_[coflow_index] : kNone;
    return g == kNone ? nullptr : &groups_[g];
  }

  /// Bumped on every membership change; lets consumers cache per-round
  /// derived state keyed on (index identity, epoch).
  std::uint64_t epoch() const { return epoch_; }

  /// Resets for a run over `num_coflows` coflows and `num_flows` flows.
  void reset(std::size_t num_coflows, std::size_t num_flows) {
    groups_.clear();
    group_of_.assign(num_coflows, kNone);
    pos_of_.assign(num_flows, kNone);
    ++epoch_;
  }

  void addFlow(std::size_t coflow_index, std::size_t flow_index) {
    std::size_t g = group_of_[coflow_index];
    if (g == kNone) {
      g = groups_.size();
      group_of_[coflow_index] = g;
      if (spare_.empty()) {
        groups_.push_back(ActiveGroup{coflow_index, {}});
      } else {
        // Recycle a retired group's vector to keep its capacity.
        groups_.push_back(ActiveGroup{coflow_index, std::move(spare_.back())});
        spare_.pop_back();
      }
    }
    pos_of_[flow_index] = groups_[g].flow_indices.size();
    groups_[g].flow_indices.push_back(flow_index);
    ++epoch_;
  }

  void removeFlow(std::size_t coflow_index, std::size_t flow_index) {
    const std::size_t g = group_of_[coflow_index];
    std::vector<std::size_t>& members = groups_[g].flow_indices;
    const std::size_t pos = pos_of_[flow_index];
    pos_of_[flow_index] = kNone;
    members[pos] = members.back();
    members.pop_back();
    if (pos < members.size()) pos_of_[members[pos]] = pos;
    if (members.empty()) {
      spare_.push_back(std::move(members));
      group_of_[coflow_index] = kNone;
      if (g + 1 != groups_.size()) {
        groups_[g] = std::move(groups_.back());
        group_of_[groups_[g].coflow_index] = g;
      }
      groups_.pop_back();
    }
    ++epoch_;
  }

  /// Rebuilds from scratch — for hand-assembled views (tests, micro
  /// benches) that never go through the engine's event loop.
  void rebuild(const std::vector<FlowState>& flows,
               const std::vector<std::size_t>& active) {
    std::size_t num_coflows = 0;
    for (const FlowState& f : flows) {
      num_coflows = std::max(num_coflows, f.coflow_index + 1);
    }
    reset(num_coflows, flows.size());
    for (const std::size_t fi : active) addFlow(flows[fi].coflow_index, fi);
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  std::vector<ActiveGroup> groups_;
  std::vector<std::size_t> group_of_;  ///< coflow index -> slot in groups_.
  std::vector<std::size_t> pos_of_;    ///< flow index -> slot in its group.
  std::vector<std::vector<std::size_t>> spare_;  ///< Retired member vectors.
  std::uint64_t epoch_ = 0;
};

}  // namespace aalo::sim
