// Discrete-event calendar for the incremental engine: lazily-invalidated
// binary min-heaps over per-flow timing predictions.
//
// The engine keeps two predictions per allocated flow, both computed once
// at rate-install time from the exact legacy expressions:
//
//  - completion key  t0 + (size - sent_t0) / rate   (flows with rate > kEps)
//    The per-round t_next candidate — replaces the legacy engine's O(active)
//    division scan with a heap peek.
//  - snap key        t0 + (size - sent_t0 - slack) / rate   (rate > 0), or
//    t0 itself for zero-rate flows already inside the completion slack.
//    The earliest time the flow becomes snap-eligible (remaining within the
//    completion slack) — gates the completion sweep, replacing the old
//    scalar min_detect_ bound with a per-flow refreshable one.
//
// Invalidation is lazy: each flow carries a generation counter, bumped
// whenever its installed rate changes or it completes. Heap entries record
// the generation they were pushed under; stale entries are discarded at
// pop/peek time instead of being located and removed. Allocation reuse
// (Scheduler::scheduleEpoch) means most rounds re-key nothing: an entry
// pushed at install stays valid for the flow's whole constant-rate segment.
//
// Keys are absolute times frozen at install. The legacy engine recomputes
// the same expressions every round against drifting `sent`, so cached keys
// differ from the per-round recomputation by accumulated-rounding ulps —
// well inside both the completion slack (1e-3 bytes) and the sweep-gate
// grace window (now * 1e-12 + kEps); the equivalence suite holds finish
// times to 1e-9 and round counts exactly.
//
// Tie-break contract: the calendar orders same-time events by flow index
// (ascending) purely for heap determinism. Which flows actually complete
// in a round — and in which order — is decided by the engine's completion
// sweep, which scans active flows in the legacy engine's exact order; see
// DESIGN.md section 7.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/state.h"
#include "util/units.h"

namespace aalo::sim {

class EventCalendar {
 public:
  struct Entry {
    util::Seconds key = 0;
    std::uint32_t flow = 0;
    std::uint32_t gen = 0;
  };

  /// Resets for a run over `num_flows` flows; drops all entries.
  void reset(std::size_t num_flows) {
    gen_.assign(num_flows, 0);
    has_completion_.assign(num_flows, 0);
    has_snap_.assign(num_flows, 0);
    completion_.clear();
    snap_.clear();
    valid_completion_ = 0;
    valid_snap_ = 0;
    rekeys_ = 0;
    events_ = 0;
  }

  /// Invalidates every entry of `fi` (rate change or completion).
  void invalidate(std::size_t fi) {
    ++gen_[fi];
    if (has_completion_[fi] != 0) {
      has_completion_[fi] = 0;
      --valid_completion_;
    }
    if (has_snap_[fi] != 0) {
      has_snap_[fi] = 0;
      --valid_snap_;
    }
  }

  /// Pushes a fresh completion prediction for `fi` under its current
  /// generation. Caller must have invalidated the old one first (which
  /// also guarantees at most one valid entry per flow per heap).
  void pushCompletion(std::size_t fi, util::Seconds key) {
    heapPush(completion_, Entry{key, static_cast<std::uint32_t>(fi), gen_[fi]});
    has_completion_[fi] = 1;
    ++valid_completion_;
    ++rekeys_;
  }

  /// Pushes a fresh snap-eligibility prediction for `fi`.
  void pushSnap(std::size_t fi, util::Seconds key) {
    heapPush(snap_, Entry{key, static_cast<std::uint32_t>(fi), gen_[fi]});
    has_snap_[fi] = 1;
    ++valid_snap_;
    ++rekeys_;
  }

  /// Begins a wholesale re-key: drops every entry from both heaps. The
  /// engine then stages one fresh entry per active flow (raw appends via
  /// stageCompletion/stageSnap) and finishRebuild() heapifies. Max-min
  /// water-filling redistributes capacity whenever membership changes, so
  /// an install round typically re-keys *most* active flows — there,
  /// 2 x changed sift-up pushes (plus the stale-entry debt they leave
  /// behind) cost far more than one contiguous O(active) heapify.
  void beginRebuild() {
    for (const Entry& e : completion_) has_completion_[e.flow] = 0;
    for (const Entry& e : snap_) has_snap_[e.flow] = 0;
    completion_.clear();
    snap_.clear();
    valid_completion_ = 0;
    valid_snap_ = 0;
  }

  /// Appends a completion prediction without restoring heap order. Only
  /// valid between beginRebuild() and finishRebuild().
  void stageCompletion(std::size_t fi, util::Seconds key) {
    completion_.push_back(Entry{key, static_cast<std::uint32_t>(fi), gen_[fi]});
    has_completion_[fi] = 1;
    ++valid_completion_;
    ++rekeys_;
  }

  /// Appends a snap prediction without restoring heap order.
  void stageSnap(std::size_t fi, util::Seconds key) {
    snap_.push_back(Entry{key, static_cast<std::uint32_t>(fi), gen_[fi]});
    has_snap_[fi] = 1;
    ++valid_snap_;
    ++rekeys_;
  }

  /// Restores the heap invariant after staging (one O(n) heapify per heap;
  /// both heaps end fully valid, so no compaction debt remains).
  void finishRebuild() {
    std::make_heap(completion_.begin(), completion_.end(), EntryLater{});
    std::make_heap(snap_.begin(), snap_.end(), EntryLater{});
  }

  /// Compacts either heap whose stale entries outnumber valid ones 4:1.
  /// Called once per engine round (not per push: a rekey burst dips the
  /// valid count transiently and would thrash push-time compaction).
  void compactIfBloated() {
    maybeCompact(completion_, valid_completion_);
    maybeCompact(snap_, valid_snap_);
  }

  /// Earliest valid completion prediction (kInfTime when none). Prunes
  /// stale entries from the top as a side effect.
  util::Seconds nextCompletion() {
    prune(completion_);
    return completion_.empty() ? kInfTime : completion_.front().key;
  }

  /// Earliest valid snap prediction (kInfTime when none).
  util::Seconds nextSnap() {
    prune(snap_);
    return snap_.empty() ? kInfTime : snap_.front().key;
  }

  /// Collects the flows of every valid completion entry with key <= bound
  /// into `out` (arbitrary order, no duplicates — at most one valid entry
  /// per flow exists). Heap-ordered DFS: subtrees rooted above the bound
  /// are pruned without visiting, so the cost is O(matches) not O(heap).
  /// The engine recomputes the exact legacy completion expression for
  /// these candidates; the cached keys only have to be close enough
  /// (within the caller's bound slack) to nominate the true minimum.
  void collectCompletionsNear(util::Seconds bound, std::vector<std::uint32_t>& out) {
    out.clear();
    if (completion_.empty()) return;
    scan_stack_.clear();
    scan_stack_.push_back(0);
    while (!scan_stack_.empty()) {
      const std::size_t i = scan_stack_.back();
      scan_stack_.pop_back();
      const Entry& e = completion_[i];
      if (e.key > bound) continue;  // Children are no earlier.
      if (gen_[e.flow] == e.gen) out.push_back(e.flow);
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      if (l < completion_.size()) scan_stack_.push_back(l);
      if (r < completion_.size()) scan_stack_.push_back(r);
    }
  }

  /// Pops every valid snap entry with key <= bound into `due` (flow
  /// indices, arbitrary order). Returns true when any were due. The
  /// engine re-pushes refreshed keys for flows the sweep does not
  /// complete, so a premature gate self-heals instead of re-firing.
  bool drainSnapDue(util::Seconds bound, std::vector<std::uint32_t>& due) {
    due.clear();
    while (true) {
      prune(snap_);
      if (snap_.empty() || snap_.front().key > bound) break;
      const std::uint32_t fi = snap_.front().flow;
      due.push_back(fi);
      has_snap_[fi] = 0;
      --valid_snap_;
      heapPop(snap_);
      ++events_;
    }
    return !due.empty();
  }

  /// Marks one completion-heap prediction as consumed (the round landed
  /// on it); purely a statistics hook.
  void noteEventProcessed() { ++events_; }

  std::size_t rekeys() const { return rekeys_; }
  std::size_t eventsProcessed() const { return events_; }

  // ---- Test support ----------------------------------------------------
  std::size_t completionHeapSize() const { return completion_.size(); }
  std::size_t snapHeapSize() const { return snap_.size(); }
  bool entryValid(const Entry& e) const { return gen_[e.flow] == e.gen; }
  const std::vector<Entry>& completionHeap() const { return completion_; }
  const std::vector<Entry>& snapHeap() const { return snap_; }
  /// Verifies the binary-heap ordering invariant of both heaps.
  bool checkHeapInvariant() const {
    return heapOrdered(completion_) && heapOrdered(snap_);
  }

 private:
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.flow > b.flow;  // Deterministic order for equal keys.
    }
  };

  static void heapPush(std::vector<Entry>& h, Entry e) {
    h.push_back(e);
    std::push_heap(h.begin(), h.end(), EntryLater{});
  }

  static void heapPop(std::vector<Entry>& h) {
    std::pop_heap(h.begin(), h.end(), EntryLater{});
    h.pop_back();
  }

  static bool heapOrdered(const std::vector<Entry>& h) {
    return std::is_heap(h.begin(), h.end(), EntryLater{});
  }

  /// Discards stale entries from the heap top.
  void prune(std::vector<Entry>& h) {
    while (!h.empty() && gen_[h.front().flow] != h.front().gen) heapPop(h);
  }

  /// Lazy invalidation leaves stale entries buried in the heap (only the
  /// top is pruned); without compaction they accumulate monotonically —
  /// large-key junk sinks and never resurfaces — and push cost degrades
  /// with dead weight. Rebuild from the valid entries once they are
  /// outnumbered 4:1; O(size) amortized against the pushes that grew it.
  void maybeCompact(std::vector<Entry>& h, std::size_t valid) {
    if (h.size() < 64 || h.size() <= 4 * valid) return;
    h.erase(std::remove_if(h.begin(), h.end(),
                           [this](const Entry& e) { return gen_[e.flow] != e.gen; }),
            h.end());
    std::make_heap(h.begin(), h.end(), EntryLater{});
  }

  std::vector<Entry> completion_;  ///< Min-heap on key.
  std::vector<Entry> snap_;        ///< Min-heap on key.
  std::vector<std::uint32_t> gen_;
  std::vector<std::uint8_t> has_completion_;  ///< Flow has a valid entry.
  std::vector<std::uint8_t> has_snap_;
  std::size_t valid_completion_ = 0;
  std::size_t valid_snap_ = 0;
  std::vector<std::size_t> scan_stack_;  ///< collectCompletionsNear scratch.
  std::size_t rekeys_ = 0;
  std::size_t events_ = 0;
};

}  // namespace aalo::sim
