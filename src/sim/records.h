// Per-coflow and per-job results of one simulation run.
#pragma once

#include <string>
#include <vector>

#include "coflow/ids.h"
#include "util/units.h"

namespace aalo::sim {

struct CoflowRecord {
  coflow::CoflowId id;
  coflow::JobId job = 0;
  util::Seconds spec_arrival = 0;  ///< When the coflow wanted to start.
  util::Seconds release = 0;       ///< When Starts-After parents allowed it.
  util::Seconds finish_own = 0;    ///< Last own flow completion.
  util::Seconds finish = 0;        ///< After Finishes-Before adjustment.
  util::Bytes bytes = 0;
  util::Bytes max_flow_bytes = 0;  ///< Coflow length (§7.1).
  std::size_t width = 0;           ///< Number of flows.

  /// Completion time as the paper measures it: from when the coflow could
  /// first send (its release) until all of its flows are done and every
  /// pipelined parent has finished.
  util::Seconds cct() const { return finish - release; }
};

struct JobRecord {
  coflow::JobId id = 0;
  util::Seconds arrival = 0;
  util::Seconds comm_finish = 0;   ///< Last coflow (adjusted) finish.
  util::Seconds compute_time = 0;  ///< Modeled non-communication time.

  /// End-to-end job completion time: communication critical path plus the
  /// job's serial compute time.
  util::Seconds jct() const { return (comm_finish - arrival) + compute_time; }
  /// Time attributable to communication alone.
  util::Seconds commTime() const { return comm_finish - arrival; }
  /// Fraction of the job spent in communication (Table 2 binning).
  double commFraction() const {
    const util::Seconds total = jct();
    return total > 0 ? commTime() / total : 0.0;
  }
};

struct SimResult {
  std::string scheduler;
  std::vector<CoflowRecord> coflows;
  std::vector<JobRecord> jobs;
  util::Seconds makespan = 0;
  /// Engine statistics (useful for perf sanity checks).
  std::size_t allocation_rounds = 0;
  /// Rounds where the scheduler was actually asked for a new allocation.
  std::size_t allocate_calls = 0;
  /// Rounds where the installed rates were reused via the scheduleEpoch
  /// handshake (allocation_rounds = allocate_calls + reused_allocations
  /// under the incremental engine; reuse is 0 under the legacy engine).
  std::size_t reused_allocations = 0;
  /// Times the completion predictor (sweep gate + per-coflow aggregate
  /// rates) was rebuilt — one per allocation install under the
  /// incremental engine, 0 under the legacy engine.
  std::size_t heap_rebuilds = 0;
  /// Calendar events consumed by the event-driven engine: completion
  /// predictions the clock landed on plus snap-gate firings. 0 under the
  /// legacy engine.
  std::size_t events_processed = 0;
  /// Per-flow timing predictions (re)pushed onto the event calendar.
  /// Allocation reuse keeps this near the number of genuine rate changes
  /// rather than rounds x active flows. 0 under the legacy engine.
  std::size_t heap_rekeys = 0;
};

}  // namespace aalo::sim
