// Per-coflow and per-job results of one simulation run.
#pragma once

#include <string>
#include <vector>

#include "coflow/ids.h"
#include "util/units.h"

namespace aalo::sim {

struct CoflowRecord {
  coflow::CoflowId id;
  coflow::JobId job = 0;
  util::Seconds spec_arrival = 0;  ///< When the coflow wanted to start.
  util::Seconds release = 0;       ///< When Starts-After parents allowed it.
  util::Seconds finish_own = 0;    ///< Last own flow completion.
  util::Seconds finish = 0;        ///< After Finishes-Before adjustment.
  util::Bytes bytes = 0;
  util::Bytes max_flow_bytes = 0;  ///< Coflow length (§7.1).
  std::size_t width = 0;           ///< Number of flows.
  /// Completion deadline relative to release (0 = none), from the spec.
  util::Seconds deadline = 0;

  /// Completion time as the paper measures it: from when the coflow could
  /// first send (its release) until all of its flows are done and every
  /// pipelined parent has finished.
  util::Seconds cct() const { return finish - release; }

  bool hasDeadline() const { return deadline > 0; }
  /// Deadline verdict with a small tolerance so fluid-rate rounding at
  /// the boundary never flips a met deadline to missed.
  bool missedDeadline() const { return hasDeadline() && cct() > deadline + 1e-9; }
};

struct JobRecord {
  coflow::JobId id = 0;
  util::Seconds arrival = 0;
  util::Seconds comm_finish = 0;   ///< Last coflow (adjusted) finish.
  util::Seconds compute_time = 0;  ///< Modeled non-communication time.

  /// End-to-end job completion time: communication critical path plus the
  /// job's serial compute time.
  util::Seconds jct() const { return (comm_finish - arrival) + compute_time; }
  /// Time attributable to communication alone.
  util::Seconds commTime() const { return comm_finish - arrival; }
  /// Fraction of the job spent in communication (Table 2 binning).
  double commFraction() const {
    const util::Seconds total = jct();
    return total > 0 ? commTime() / total : 0.0;
  }
};

struct SimResult {
  std::string scheduler;
  std::vector<CoflowRecord> coflows;
  std::vector<JobRecord> jobs;
  util::Seconds makespan = 0;
  /// Coflows that carried a deadline, and how many of those finished past
  /// it (rejected coflows count as misses once their CCT overruns).
  std::size_t deadline_coflows = 0;
  std::size_t deadline_misses = 0;
  /// Coflows the scheduler's admission control rejected (deadline-aware
  /// disciplines only; they still complete under background service).
  std::size_t rejected_coflows = 0;
  /// Engine statistics (useful for perf sanity checks).
  std::size_t allocation_rounds = 0;
  /// Rounds where the scheduler was actually asked for a new allocation.
  std::size_t allocate_calls = 0;
  /// Rounds where the installed rates were reused via the scheduleEpoch
  /// handshake (allocation_rounds = allocate_calls + reused_allocations
  /// under the incremental engine; reuse is 0 under the legacy engine).
  std::size_t reused_allocations = 0;
  /// Times the completion predictor (sweep gate + per-coflow aggregate
  /// rates) was rebuilt — one per allocation install under the
  /// incremental engine, 0 under the legacy engine.
  std::size_t heap_rebuilds = 0;
  /// Calendar events consumed by the event-driven engine: completion
  /// predictions the clock landed on plus snap-gate firings. 0 under the
  /// legacy engine.
  std::size_t events_processed = 0;
  /// Per-flow timing predictions (re)pushed onto the event calendar.
  /// Allocation reuse keeps this near the number of genuine rate changes
  /// rather than rounds x active flows. 0 under the legacy engine.
  std::size_t heap_rekeys = 0;

  /// Sum of CCTs — the unit-weighted "weighted CCT" objective the
  /// LP lower bound (sched/lp_bound.h) is compared against.
  util::Seconds totalCct() const {
    util::Seconds total = 0;
    for (const CoflowRecord& c : coflows) total += c.cct();
    return total;
  }
  /// Fraction of deadlined coflows that missed (0 when none carried one).
  double deadlineMissRate() const {
    return deadline_coflows > 0
               ? static_cast<double>(deadline_misses) /
                     static_cast<double>(deadline_coflows)
               : 0.0;
  }
};

}  // namespace aalo::sim
