#include "sim/metrics.h"

namespace aalo::sim {

void recordSimResult(obs::Registry& registry, const SimResult& result) {
  const std::string labels = "scheduler=\"" + result.scheduler + "\"";
  registry
      .counter("aalo_sim_rounds_total", "Allocation rounds executed", labels)
      .fetch_add(result.allocation_rounds);
  registry
      .counter("aalo_sim_allocate_calls_total",
               "Rounds that asked the scheduler for a fresh allocation", labels)
      .fetch_add(result.allocate_calls);
  registry
      .counter("aalo_sim_reused_allocations_total",
               "Rounds that reused installed rates (scheduleEpoch handshake)",
               labels)
      .fetch_add(result.reused_allocations);
  registry
      .counter("aalo_sim_heap_rebuilds_total",
               "Completion-predictor rebuilds (one per allocation install)", labels)
      .fetch_add(result.heap_rebuilds);
  registry
      .counter("aalo_sim_coflows_total", "Coflows completed", labels)
      .fetch_add(result.coflows.size());
  registry
      .counter("aalo_sim_deadline_coflows_total",
               "Coflows that carried a completion deadline", labels)
      .fetch_add(result.deadline_coflows);
  registry
      .counter("aalo_sim_deadline_misses_total",
               "Deadlined coflows that finished past their deadline", labels)
      .fetch_add(result.deadline_misses);
  registry
      .counter("aalo_sim_rejected_coflows_total",
               "Coflows rejected by deadline-aware admission control", labels)
      .fetch_add(result.rejected_coflows);
  obs::LatencyHistogram& cct = registry.histogram(
      "aalo_sim_cct_seconds", "Coflow completion times",
      {.first_bound = 1e-3, .growth = 2.0, .num_bounds = 28}, labels);
  for (const CoflowRecord& c : result.coflows) cct.observe(c.cct());
}

}  // namespace aalo::sim
