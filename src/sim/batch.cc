#include "sim/batch.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/metrics.h"

namespace aalo::sim {

namespace {

struct JobOutcome {
  SimResult result;
  std::exception_ptr error;
};

JobOutcome runOne(const BatchJob& job,
                  const BatchOptions& options, std::size_t index,
                  std::mutex* done_mutex) {
  JobOutcome out;
  try {
    if (job.workload == nullptr) {
      throw std::invalid_argument("BatchJob: workload must not be null");
    }
    if (!job.make_scheduler) {
      throw std::invalid_argument("BatchJob: make_scheduler must not be empty");
    }
    const auto start = std::chrono::steady_clock::now();
    // The scheduler is built here, inside the claimed job, so each run
    // owns all of its mutable state.
    std::unique_ptr<Scheduler> scheduler = job.make_scheduler();
    out.result = runSimulation(*job.workload, job.fabric, *scheduler, job.options);
    if (options.on_done) {
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      std::unique_lock<std::mutex> lock;
      if (done_mutex != nullptr) lock = std::unique_lock(*done_mutex);
      options.on_done(index, job, out.result, wall);
    }
  } catch (...) {
    out.error = std::current_exception();
  }
  return out;
}

}  // namespace

std::vector<SimResult> runBatch(const std::vector<BatchJob>& jobs,
                                const BatchOptions& options) {
  std::vector<JobOutcome> outcomes(jobs.size());

  int threads = options.num_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), jobs.size()));

  if (threads <= 1) {
    // Inline path: no pool, no locks — what a plain for-loop would do.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      outcomes[i] = runOne(jobs[i], options, i, /*done_mutex=*/nullptr);
    }
  } else {
    // Work stealing by atomic counter: each worker claims the next
    // unstarted job. Results land in their submission slot, so the
    // returned vector is independent of scheduling order.
    std::atomic<std::size_t> next{0};
    std::mutex done_mutex;
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        outcomes[i] = runOne(jobs[i], options, i, &done_mutex);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Surface failures deterministically: first failed job wins.
  for (JobOutcome& out : outcomes) {
    if (out.error) std::rethrow_exception(out.error);
  }

  std::vector<SimResult> results;
  results.reserve(outcomes.size());
  for (JobOutcome& out : outcomes) results.push_back(std::move(out.result));
  if (options.metrics != nullptr) {
    for (const SimResult& result : results) {
      recordSimResult(*options.metrics, result);
    }
  }
  return results;
}

}  // namespace aalo::sim
