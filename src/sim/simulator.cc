#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sim/metrics.h"
#include "util/units.h"

namespace aalo::sim {

namespace {

// Bytes closer to completion than this snap to done (fluid-rate rounding).
constexpr util::Bytes kCompletionSlackBytes = 1e-3;

struct TimelineEvent {
  util::Seconds time = 0;
  enum class Kind { kCoflowRelease, kFlowRelease } kind = Kind::kCoflowRelease;
  std::size_t index = 0;  ///< Coflow or flow index depending on kind.
  std::uint64_t seq = 0;  ///< FIFO tie-break for equal times.
};

struct EventLater {
  bool operator()(const TimelineEvent& a, const TimelineEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// All mutable state of one run, torn down when run() returns.
class Run {
 public:
  Run(const fabric::FabricConfig& fabric_config, Scheduler& scheduler,
      const SimOptions& options, const coflow::Workload& workload)
      : fabric_(fabric_config),
        scheduler_(scheduler),
        options_(options),
        workload_(workload),
        incremental_(options.incremental_engine) {
    buildState();
  }

  SimResult execute();

 private:
  void buildState();
  void pushEvent(util::Seconds time, TimelineEvent::Kind kind, std::size_t index);
  void processDueEvents();
  void releaseCoflow(std::size_t ci);
  void releaseFlow(std::size_t fi);
  void finishCoflow(std::size_t ci);
  SimView makeView() const;
  void verifyAllocation() const;
  SimResult buildResult();

  SimResult executeLegacy();
  SimResult executeIncremental();
  void installAllocation(const SimView& view);
  void sweepCompletions();

  fabric::Fabric fabric_;
  Scheduler& scheduler_;
  const SimOptions& options_;
  const coflow::Workload& workload_;
  const bool incremental_;

  std::vector<CoflowState> coflows_;
  std::vector<FlowState> flows_;
  std::vector<std::size_t> active_flows_;
  ActiveCoflowIndex active_index_;
  std::vector<util::Rate> rates_;

  // Spec back-references and dependency bookkeeping, parallel to coflows_.
  std::vector<const coflow::CoflowSpec*> specs_;
  std::vector<int> barrier_parents_left_;
  std::vector<std::vector<std::size_t>> barrier_children_;
  std::vector<std::vector<std::size_t>> fb_parents_;  // finishes-before
  std::unordered_map<coflow::CoflowId, std::size_t> index_of_;

  std::priority_queue<TimelineEvent, std::vector<TimelineEvent>, EventLater> timeline_;
  std::uint64_t event_seq_ = 0;
  util::Seconds now_ = 0;
  std::size_t coflows_done_ = 0;
  std::size_t rounds_ = 0;

  // --- Incremental-engine state --------------------------------------
  // Per-coflow aggregate installed rate (SimView::coflow_rates).
  std::vector<util::Rate> coflow_rate_;
  // Conservative earliest time any active flow becomes snap-eligible
  // (remaining within completion slack) — the gate for running the
  // completion sweep. Rebuilt at install, re-derived from survivors
  // after each sweep; the prediction errs early, never late.
  util::Seconds min_detect_ = kInfTime;
  bool installed_ = false;
  std::uint64_t installed_index_epoch_ = 0;
  std::uint64_t installed_sched_epoch_ = 0;
  std::size_t allocate_calls_ = 0;
  std::size_t reused_allocations_ = 0;
  std::size_t heap_rebuilds_ = 0;
};

void Run::buildState() {
  workload_.validate();
  if (workload_.num_ports != fabric_.numPorts()) {
    throw std::invalid_argument("Simulator: workload/fabric port count mismatch");
  }

  for (const coflow::JobSpec& job : workload_.jobs) {
    for (const coflow::CoflowSpec& spec : job.coflows) {
      const std::size_t ci = coflows_.size();
      index_of_[spec.id] = ci;
      specs_.push_back(&spec);
      CoflowState cs;
      cs.id = spec.id;
      cs.job = job.id;
      cs.spec_arrival = job.arrival + spec.arrival_offset;
      for (const coflow::FlowSpec& fs : spec.flows) {
        const std::size_t fi = flows_.size();
        FlowState f;
        f.id = static_cast<coflow::FlowId>(fi);
        f.coflow_index = ci;
        f.src = fs.src;
        f.dst = fs.dst;
        f.size = fs.bytes;
        flows_.push_back(f);
        cs.flow_indices.push_back(fi);
      }
      coflows_.push_back(std::move(cs));
    }
  }

  barrier_parents_left_.assign(coflows_.size(), 0);
  barrier_children_.assign(coflows_.size(), {});
  fb_parents_.assign(coflows_.size(), {});
  std::size_t ci = 0;
  for (const coflow::JobSpec& job : workload_.jobs) {
    for (const coflow::CoflowSpec& spec : job.coflows) {
      for (const coflow::CoflowId& pid : spec.starts_after) {
        const std::size_t pi = index_of_.at(pid);
        barrier_children_[pi].push_back(ci);
        ++barrier_parents_left_[ci];
      }
      for (const coflow::CoflowId& pid : spec.finishes_before) {
        fb_parents_[ci].push_back(index_of_.at(pid));
      }
      ++ci;
    }
  }

  rates_.assign(flows_.size(), 0.0);
  active_index_.reset(coflows_.size(), flows_.size());
  for (std::size_t i = 0; i < coflows_.size(); ++i) {
    if (barrier_parents_left_[i] == 0) {
      pushEvent(coflows_[i].spec_arrival, TimelineEvent::Kind::kCoflowRelease, i);
    }
  }
}

void Run::pushEvent(util::Seconds time, TimelineEvent::Kind kind, std::size_t index) {
  timeline_.push(TimelineEvent{time, kind, index, event_seq_++});
}

SimView Run::makeView() const {
  SimView view;
  view.now = now_;
  view.fabric = &fabric_;
  view.coflows = &coflows_;
  view.flows = &flows_;
  view.active_flows = &active_flows_;
  view.active_index = &active_index_;
  if (incremental_) view.coflow_rates = &coflow_rate_;
  return view;
}

void Run::releaseCoflow(std::size_t ci) {
  CoflowState& c = coflows_[ci];
  c.released = true;
  c.release_time = now_;
  const coflow::CoflowSpec& spec = *specs_[ci];
  for (std::size_t k = 0; k < spec.flows.size(); ++k) {
    const std::size_t fi = c.flow_indices[k];
    const util::Seconds offset = spec.flows[k].start_offset;
    if (offset <= 0) {
      releaseFlow(fi);
    } else {
      pushEvent(now_ + offset, TimelineEvent::Kind::kFlowRelease, fi);
    }
  }
  scheduler_.onCoflowReleased(makeView(), ci);
}

void Run::releaseFlow(std::size_t fi) {
  FlowState& f = flows_[fi];
  f.started = true;
  f.release_time = now_;
  active_flows_.push_back(fi);
  active_index_.addFlow(f.coflow_index, fi);
  coflows_[f.coflow_index].size_released += f.size;
  if (incremental_) scheduler_.onFlowStarted(makeView(), fi);
}

void Run::finishCoflow(std::size_t ci) {
  CoflowState& c = coflows_[ci];
  c.done = true;
  c.finish_time = now_;
  ++coflows_done_;
  scheduler_.onCoflowFinished(makeView(), ci);
  for (const std::size_t child : barrier_children_[ci]) {
    if (--barrier_parents_left_[child] == 0) {
      pushEvent(std::max(now_, coflows_[child].spec_arrival),
                TimelineEvent::Kind::kCoflowRelease, child);
    }
  }
}

void Run::processDueEvents() {
  while (!timeline_.empty() && timeline_.top().time <= now_ + util::kEps) {
    const TimelineEvent ev = timeline_.top();
    timeline_.pop();
    switch (ev.kind) {
      case TimelineEvent::Kind::kCoflowRelease:
        releaseCoflow(ev.index);
        break;
      case TimelineEvent::Kind::kFlowRelease:
        releaseFlow(ev.index);
        break;
    }
  }
}

void Run::verifyAllocation() const {
  std::vector<util::Rate> in(static_cast<std::size_t>(fabric_.numPorts()), 0.0);
  std::vector<util::Rate> out(in.size(), 0.0);
  const std::size_t racks =
      fabric_.hasRacks() ? static_cast<std::size_t>(fabric_.numRacks()) : 0;
  std::vector<util::Rate> up(racks, 0.0);
  std::vector<util::Rate> down(racks, 0.0);
  for (const std::size_t fi : active_flows_) {
    const FlowState& f = flows_[fi];
    if (f.rate < 0) throw std::logic_error("Simulator: negative rate from scheduler");
    in[static_cast<std::size_t>(f.src)] += f.rate;
    out[static_cast<std::size_t>(f.dst)] += f.rate;
    if (racks > 0 && fabric_.crossRack(f.src, f.dst)) {
      up[static_cast<std::size_t>(fabric_.rackOf(f.src))] += f.rate;
      down[static_cast<std::size_t>(fabric_.rackOf(f.dst))] += f.rate;
    }
  }
  const double tol = 1e-6;
  for (std::size_t p = 0; p < in.size(); ++p) {
    const auto pid = static_cast<coflow::PortId>(p);
    if (in[p] > fabric_.ingressCapacity(pid) * (1.0 + tol) + util::kEps ||
        out[p] > fabric_.egressCapacity(pid) * (1.0 + tol) + util::kEps) {
      throw std::logic_error("Simulator: allocation exceeds port capacity (" +
                             scheduler_.name() + ")");
    }
  }
  for (std::size_t r = 0; r < racks; ++r) {
    const int rack = static_cast<int>(r);
    if (up[r] > fabric_.rackUplinkCapacity(rack) * (1.0 + tol) + util::kEps ||
        down[r] > fabric_.rackDownlinkCapacity(rack) * (1.0 + tol) + util::kEps) {
      throw std::logic_error("Simulator: allocation exceeds rack capacity (" +
                             scheduler_.name() + ")");
    }
  }
}

SimResult Run::execute() {
  return incremental_ ? executeIncremental() : executeLegacy();
}

SimResult Run::executeLegacy() {
  scheduler_.reset(fabric_);
  processDueEvents();  // Releases everything due at t = 0.

  while (true) {
    if (active_flows_.empty()) {
      if (timeline_.empty()) break;  // All done.
      now_ = timeline_.top().time;
      processDueEvents();
      continue;
    }

    if (++rounds_ > options_.max_rounds) {
      throw std::runtime_error("Simulator: exceeded max rounds (" + scheduler_.name() +
                               ")");
    }

    for (const std::size_t fi : active_flows_) rates_[fi] = 0.0;
    const SimView view = makeView();
    scheduler_.allocate(view, rates_);
    for (const std::size_t fi : active_flows_) {
      flows_[fi].rate = std::max(0.0, rates_[fi]);
    }
    if (options_.verify_allocations) verifyAllocation();

    // Earliest next state change.
    util::Seconds t_next = timeline_.empty() ? kInfTime : timeline_.top().time;
    for (const std::size_t fi : active_flows_) {
      const FlowState& f = flows_[fi];
      if (f.rate > util::kEps) {
        t_next = std::min(t_next, now_ + (f.size - f.sent) / f.rate);
      }
    }
    const util::Seconds wake = scheduler_.nextWakeup(view);
    if (wake > now_) t_next = std::min(t_next, wake);

    if (!std::isfinite(t_next)) {
      throw std::runtime_error("Simulator: starvation deadlock under scheduler " +
                               scheduler_.name());
    }
    t_next = std::max(t_next, now_);  // Guard against wake-ups in the past.

    // Integrate.
    const util::Seconds dt = t_next - now_;
    if (dt > 0) {
      for (const std::size_t fi : active_flows_) {
        FlowState& f = flows_[fi];
        if (f.rate <= 0) continue;
        const util::Bytes delta = std::min(f.rate * dt, f.size - f.sent);
        f.sent += delta;
        coflows_[f.coflow_index].sent += delta;
      }
    }
    now_ = t_next;

    // Flow completions (snap near-complete flows).
    for (std::size_t k = 0; k < active_flows_.size();) {
      const std::size_t fi = active_flows_[k];
      FlowState& f = flows_[fi];
      const util::Bytes remaining = f.size - f.sent;
      if (remaining <= std::max(kCompletionSlackBytes, 1e-9 * f.size)) {
        coflows_[f.coflow_index].sent += remaining;  // Account the snap.
        f.sent = f.size;
        f.done = true;
        f.rate = 0;
        active_flows_[k] = active_flows_.back();
        active_flows_.pop_back();
        active_index_.removeFlow(f.coflow_index, fi);
        CoflowState& c = coflows_[f.coflow_index];
        if (++c.flows_done == c.flow_indices.size()) {
          finishCoflow(f.coflow_index);
        }
      } else {
        ++k;
      }
    }

    processDueEvents();
  }

  if (coflows_done_ != coflows_.size()) {
    throw std::runtime_error("Simulator: run ended with unfinished coflows");
  }
  allocate_calls_ = rounds_;
  return buildResult();
}

// --- Incremental engine ----------------------------------------------
//
// Produces bitwise-identical trajectories to executeLegacy()
// (tests/engine_equivalence_test.cc holds every scheduler to 1e-9 on
// every finish time). That bound is only reachable by keeping the round
// arithmetic — the t_next min-scan, the per-flow integration order, the
// completion-sweep order — exactly the legacy loop's: schedulers that
// compare exact attained service (continuous CLAS's sort, D-CLAS
// threshold back-dating) amplify a single ulp of drift into different
// scheduling decisions and macroscopically different finish times. The
// engine's savings are therefore confined to work the legacy loop
// redoes without need:
//
//  1. Allocation reuse. Every membership change bumps the active-index
//     epoch, and schedulers opt in via scheduleEpoch(), which changes
//     whenever their allocation inputs do. When both epochs match the
//     installed pair, the round skips rate zeroing, allocate(), the
//     rate copy, and verification outright: rates are piecewise-
//     constant, so the installed values are still exact.
//  2. Per-coflow aggregate rates (SimView::coflow_rates), rebuilt once
//     per install by summing flow rates in group flow-index order —
//     bitwise equal to the per-flow fallback sum in
//     coflowAggregateRate() — making scheduler wake-up predictions
//     O(1) per coflow instead of O(flows).
//  3. A completion-sweep gate. The legacy loop scans every active flow
//     for snap-eligibility every round; here a conservative earliest
//     snap-eligible time is kept (rebuilt at install, re-derived from
//     survivors after each sweep) and the sweep is skipped while now_
//     is provably short of it. The prediction errs early, never late:
//     an early gate just runs the same no-op scan legacy would.

void Run::installAllocation(const SimView& view) {
  ++allocate_calls_;
  for (const std::size_t fi : active_flows_) rates_[fi] = 0.0;
  scheduler_.allocate(view, rates_);
  for (const std::size_t fi : active_flows_) {
    flows_[fi].rate = std::max(0.0, rates_[fi]);
  }
  if (options_.verify_allocations) verifyAllocation();

  // Aggregates in group flow-index order: coflowAggregateRate()'s
  // fallback sums in this exact order under the legacy engine, and
  // scheduler wake-up predictions need both engines to read bitwise-
  // equal totals.
  for (const ActiveGroup& g : active_index_.groups()) {
    util::Rate total = 0.0;
    for (const std::size_t fi : g.flow_indices) total += flows_[fi].rate;
    coflow_rate_[g.coflow_index] = total;
  }

  // Earliest snap-eligible time across active flows. `f.rate > 0` (not
  // > kEps) so dust-rate flows that creep into the slack window over a
  // long horizon still open the gate when legacy would snap them.
  min_detect_ = kInfTime;
  for (const std::size_t fi : active_flows_) {
    const FlowState& f = flows_[fi];
    const util::Bytes remaining = f.size - f.sent;
    const util::Bytes slack = std::max(kCompletionSlackBytes, 1e-9 * f.size);
    if (f.rate > 0) {
      min_detect_ = std::min(min_detect_, now_ + (remaining - slack) / f.rate);
    } else if (remaining <= slack) {
      min_detect_ = now_;  // Zero-rate but already snap-eligible.
    }
  }
  ++heap_rebuilds_;

  installed_ = true;
  installed_index_epoch_ = active_index_.epoch();
  installed_sched_epoch_ = scheduler_.scheduleEpoch(view);
}

void Run::sweepCompletions() {
  // Legacy-identical completion condition and iteration order; also
  // re-derives min_detect_ from the survivors so the gate is always a
  // fresh conservative bound after a (possibly premature) sweep.
  min_detect_ = kInfTime;
  for (std::size_t k = 0; k < active_flows_.size();) {
    const std::size_t fi = active_flows_[k];
    FlowState& f = flows_[fi];
    const util::Bytes remaining = f.size - f.sent;
    const util::Bytes slack = std::max(kCompletionSlackBytes, 1e-9 * f.size);
    if (remaining <= slack) {
      coflows_[f.coflow_index].sent += remaining;  // Account the snap.
      f.sent = f.size;
      f.done = true;
      f.rate = 0;
      active_flows_[k] = active_flows_.back();
      active_flows_.pop_back();
      active_index_.removeFlow(f.coflow_index, fi);
      scheduler_.onFlowCompleted(makeView(), fi);
      CoflowState& c = coflows_[f.coflow_index];
      if (++c.flows_done == c.flow_indices.size()) {
        finishCoflow(f.coflow_index);
      }
    } else {
      if (f.rate > 0) {
        min_detect_ = std::min(min_detect_, now_ + (remaining - slack) / f.rate);
      }
      ++k;
    }
  }
}

SimResult Run::executeIncremental() {
  scheduler_.reset(fabric_);
  coflow_rate_.assign(coflows_.size(), 0.0);
  processDueEvents();  // Releases everything due at t = 0.

  while (true) {
    if (active_flows_.empty()) {
      if (timeline_.empty()) break;  // All done.
      now_ = timeline_.top().time;
      installed_ = false;
      processDueEvents();
      continue;
    }

    if (++rounds_ > options_.max_rounds) {
      throw std::runtime_error("Simulator: exceeded max rounds (" + scheduler_.name() +
                               ")");
    }

    const SimView view = makeView();
    bool reuse = installed_ && active_index_.epoch() == installed_index_epoch_;
    if (reuse) {
      // scheduleEpoch() is also the scheduler's per-round sync hook
      // (D-CLAS applies boundary demotions here), so it must run before
      // the reuse decision is final.
      const std::uint64_t se = scheduler_.scheduleEpoch(view);
      reuse = se != 0 && se == installed_sched_epoch_;
    }
    if (reuse) {
      ++reused_allocations_;
    } else {
      installAllocation(view);
    }

    // From here the round is the legacy loop verbatim (same scan and
    // integration order — see the equivalence note above), except that
    // the completion sweep is gated on min_detect_.
    util::Seconds t_next = timeline_.empty() ? kInfTime : timeline_.top().time;
    for (const std::size_t fi : active_flows_) {
      const FlowState& f = flows_[fi];
      if (f.rate > util::kEps) {
        t_next = std::min(t_next, now_ + (f.size - f.sent) / f.rate);
      }
    }
    const util::Seconds wake = scheduler_.nextWakeup(view);
    if (wake > now_) t_next = std::min(t_next, wake);

    if (!std::isfinite(t_next)) {
      throw std::runtime_error("Simulator: starvation deadlock under scheduler " +
                               scheduler_.name());
    }
    t_next = std::max(t_next, now_);  // Guard against wake-ups in the past.

    // Integrate.
    const util::Seconds dt = t_next - now_;
    if (dt > 0) {
      for (const std::size_t fi : active_flows_) {
        FlowState& f = flows_[fi];
        if (f.rate <= 0) continue;
        const util::Bytes delta = std::min(f.rate * dt, f.size - f.sent);
        f.sent += delta;
        coflows_[f.coflow_index].sent += delta;
      }
    }
    now_ = t_next;

    // The relative term covers rounding in the prediction itself at
    // large now_, where one ulp can exceed the absolute kEps grace.
    if (min_detect_ <= now_ * (1.0 + 1e-12) + util::kEps) {
      sweepCompletions();
    }

    processDueEvents();
  }

  if (coflows_done_ != coflows_.size()) {
    throw std::runtime_error("Simulator: run ended with unfinished coflows");
  }
  return buildResult();
}

SimResult Run::buildResult() {
  SimResult result;
  result.scheduler = scheduler_.name();
  result.allocation_rounds = rounds_;
  result.allocate_calls = allocate_calls_;
  result.reused_allocations = reused_allocations_;
  result.heap_rebuilds = heap_rebuilds_;
  result.makespan = now_;

  // Finishes-Before adjustment: a coflow's effective finish is the max of
  // its own finish and its pipelined parents' effective finishes.
  std::vector<util::Seconds> adjusted(coflows_.size(), -1.0);
  std::vector<int> visiting(coflows_.size(), 0);
  auto dfs = [&](auto&& self, std::size_t ci) -> util::Seconds {
    if (adjusted[ci] >= 0) return adjusted[ci];
    if (visiting[ci]) {
      throw std::runtime_error("Simulator: cycle in finishes_before dependencies");
    }
    visiting[ci] = 1;
    util::Seconds t = coflows_[ci].finish_time;
    for (const std::size_t pi : fb_parents_[ci]) t = std::max(t, self(self, pi));
    visiting[ci] = 0;
    adjusted[ci] = t;
    return t;
  };

  std::unordered_map<coflow::JobId, JobRecord> job_records;
  for (const coflow::JobSpec& job : workload_.jobs) {
    JobRecord jr;
    jr.id = job.id;
    jr.arrival = job.arrival;
    jr.compute_time = job.compute_time;
    jr.comm_finish = job.arrival;
    job_records[job.id] = jr;
  }

  for (std::size_t ci = 0; ci < coflows_.size(); ++ci) {
    const CoflowState& c = coflows_[ci];
    const coflow::CoflowSpec& spec = *specs_[ci];
    CoflowRecord rec;
    rec.id = c.id;
    rec.job = c.job;
    rec.spec_arrival = c.spec_arrival;
    rec.release = c.release_time;
    rec.finish_own = c.finish_time;
    rec.finish = dfs(dfs, ci);
    rec.bytes = spec.totalBytes();
    rec.max_flow_bytes = spec.maxFlowBytes();
    rec.width = spec.width();
    result.coflows.push_back(rec);
    JobRecord& jr = job_records.at(c.job);
    jr.comm_finish = std::max(jr.comm_finish, rec.finish);
  }

  for (const coflow::JobSpec& job : workload_.jobs) {
    result.jobs.push_back(job_records.at(job.id));
  }
  return result;
}

}  // namespace

Simulator::Simulator(fabric::FabricConfig fabric_config, Scheduler& scheduler,
                     SimOptions options)
    : fabric_config_(fabric_config), scheduler_(scheduler), options_(options) {}

SimResult Simulator::run(const coflow::Workload& workload) {
  Run run(fabric_config_, scheduler_, options_, workload);
  SimResult result = run.execute();
  if (options_.metrics != nullptr) recordSimResult(*options_.metrics, result);
  return result;
}

SimResult runSimulation(const coflow::Workload& workload,
                        fabric::FabricConfig fabric_config, Scheduler& scheduler,
                        SimOptions options) {
  Simulator sim(fabric_config, scheduler, options);
  return sim.run(workload);
}

}  // namespace aalo::sim
