#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sim/calendar.h"
#include "sim/metrics.h"
#include "util/units.h"

namespace aalo::sim {

namespace {

// Bytes closer to completion than this snap to done (fluid-rate rounding).
constexpr util::Bytes kCompletionSlackBytes = 1e-3;

struct TimelineEvent {
  util::Seconds time = 0;
  enum class Kind { kCoflowRelease, kFlowRelease } kind = Kind::kCoflowRelease;
  std::size_t index = 0;  ///< Coflow or flow index depending on kind.
  std::uint64_t seq = 0;  ///< FIFO tie-break for equal times.
};

struct EventLater {
  bool operator()(const TimelineEvent& a, const TimelineEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// All mutable state of one run, torn down when run() returns.
class Run {
 public:
  Run(const fabric::FabricConfig& fabric_config, Scheduler& scheduler,
      const SimOptions& options, const coflow::Workload& workload)
      : fabric_(fabric_config),
        scheduler_(scheduler),
        options_(options),
        workload_(workload),
        incremental_(options.incremental_engine) {
    buildState();
  }

  SimResult execute();

 private:
  void buildState();
  void pushEvent(util::Seconds time, TimelineEvent::Kind kind, std::size_t index);
  void processDueEvents();
  void releaseCoflow(std::size_t ci);
  void releaseFlow(std::size_t fi);
  void finishCoflow(std::size_t ci);
  SimView makeView() const;
  void verifyAllocation() const;
  SimResult buildResult();

  SimResult executeLegacy();
  SimResult executeIncremental();
  void installAllocation(const SimView& view);
  void rekeyFlow(std::size_t fi, util::Bytes remaining, util::Bytes slack);
  void sweepCompletions();

  static util::Bytes slackFor(util::Bytes size) {
    return std::max(kCompletionSlackBytes, 1e-9 * size);
  }

  fabric::Fabric fabric_;
  Scheduler& scheduler_;
  const SimOptions& options_;
  const coflow::Workload& workload_;
  const bool incremental_;

  std::vector<CoflowState> coflows_;
  FlowArena flows_;
  std::vector<std::size_t> active_flows_;
  ActiveCoflowIndex active_index_;
  std::vector<util::Rate> rates_;

  // Spec back-references and dependency bookkeeping, parallel to coflows_.
  std::vector<const coflow::CoflowSpec*> specs_;
  std::vector<int> barrier_parents_left_;
  std::vector<std::vector<std::size_t>> barrier_children_;
  std::vector<std::vector<std::size_t>> fb_parents_;  // finishes-before
  std::unordered_map<coflow::CoflowId, std::size_t> index_of_;

  std::priority_queue<TimelineEvent, std::vector<TimelineEvent>, EventLater> timeline_;
  std::uint64_t event_seq_ = 0;
  util::Seconds now_ = 0;
  std::size_t coflows_done_ = 0;
  std::size_t rounds_ = 0;

  // --- Incremental-engine state --------------------------------------
  // Per-coflow aggregate installed rate (SimView::coflow_rates).
  std::vector<util::Rate> coflow_rate_;
  // Flow-completion / snap-eligibility predictions (see calendar.h).
  EventCalendar calendar_;
  // Slot-packed mirrors of the active flows, aligned with active_flows_
  // (slot k describes flow active_flows_[k]; swap-removed in lockstep).
  // Between installs slot_sent_ is the *canonical* attained service of
  // active flows — the arena column is synced at install rounds (before
  // the scheduler reads it) and at completions, which the scheduleEpoch
  // contract already permits. Packing turns the per-round integration
  // into contiguous, branch-light passes the compiler vectorizes.
  std::vector<util::Rate> slot_rate_;
  std::vector<util::Bytes> slot_sent_;
  std::vector<util::Bytes> slot_size_;
  std::vector<util::Bytes> slot_delta_;
  std::vector<std::uint32_t> slot_coflow_;
  std::vector<std::size_t> slot_of_;     ///< flow index -> current slot.
  std::vector<std::uint32_t> snap_due_;  ///< drainSnapDue scratch.
  std::vector<std::uint32_t> completion_due_;  ///< collectCompletionsNear scratch.
  std::vector<std::uint32_t> changed_slots_;   ///< installAllocation scratch.
  bool installed_ = false;
  std::uint64_t installed_index_epoch_ = 0;
  std::uint64_t installed_sched_epoch_ = 0;
  std::size_t allocate_calls_ = 0;
  std::size_t reused_allocations_ = 0;
  std::size_t heap_rebuilds_ = 0;
};

void Run::buildState() {
  workload_.validate();
  if (workload_.num_ports != fabric_.numPorts()) {
    throw std::invalid_argument("Simulator: workload/fabric port count mismatch");
  }

  for (const coflow::JobSpec& job : workload_.jobs) {
    for (const coflow::CoflowSpec& spec : job.coflows) {
      const std::size_t ci = coflows_.size();
      index_of_[spec.id] = ci;
      specs_.push_back(&spec);
      CoflowState cs;
      cs.id = spec.id;
      cs.job = job.id;
      cs.spec_arrival = job.arrival + spec.arrival_offset;
      cs.deadline = spec.deadline;
      for (const coflow::FlowSpec& fs : spec.flows) {
        FlowState f;
        f.id = static_cast<coflow::FlowId>(flows_.size());
        f.coflow_index = ci;
        f.src = fs.src;
        f.dst = fs.dst;
        f.size = fs.bytes;
        cs.flow_indices.push_back(flows_.push(f));
      }
      coflows_.push_back(std::move(cs));
    }
  }

  barrier_parents_left_.assign(coflows_.size(), 0);
  barrier_children_.assign(coflows_.size(), {});
  fb_parents_.assign(coflows_.size(), {});
  std::size_t ci = 0;
  for (const coflow::JobSpec& job : workload_.jobs) {
    for (const coflow::CoflowSpec& spec : job.coflows) {
      for (const coflow::CoflowId& pid : spec.starts_after) {
        const std::size_t pi = index_of_.at(pid);
        barrier_children_[pi].push_back(ci);
        ++barrier_parents_left_[ci];
      }
      for (const coflow::CoflowId& pid : spec.finishes_before) {
        fb_parents_[ci].push_back(index_of_.at(pid));
      }
      ++ci;
    }
  }

  rates_.assign(flows_.size(), 0.0);
  active_index_.reset(coflows_.size(), flows_.size());
  for (std::size_t i = 0; i < coflows_.size(); ++i) {
    if (barrier_parents_left_[i] == 0) {
      pushEvent(coflows_[i].spec_arrival, TimelineEvent::Kind::kCoflowRelease, i);
    }
  }
}

void Run::pushEvent(util::Seconds time, TimelineEvent::Kind kind, std::size_t index) {
  timeline_.push(TimelineEvent{time, kind, index, event_seq_++});
}

SimView Run::makeView() const {
  SimView view;
  view.now = now_;
  view.fabric = &fabric_;
  view.coflows = &coflows_;
  view.flows = &flows_;
  view.active_flows = &active_flows_;
  view.active_index = &active_index_;
  if (incremental_) view.coflow_rates = &coflow_rate_;
  return view;
}

void Run::releaseCoflow(std::size_t ci) {
  CoflowState& c = coflows_[ci];
  c.released = true;
  c.release_time = now_;
  const coflow::CoflowSpec& spec = *specs_[ci];
  for (std::size_t k = 0; k < spec.flows.size(); ++k) {
    const std::size_t fi = c.flow_indices[k];
    const util::Seconds offset = spec.flows[k].start_offset;
    if (offset <= 0) {
      releaseFlow(fi);
    } else {
      pushEvent(now_ + offset, TimelineEvent::Kind::kFlowRelease, fi);
    }
  }
  scheduler_.onCoflowReleased(makeView(), ci);
}

void Run::releaseFlow(std::size_t fi) {
  flows_.started[fi] = 1;
  flows_.release_time[fi] = now_;
  active_flows_.push_back(fi);
  active_index_.addFlow(flows_.coflow_of[fi], fi, flows_.src_port[fi],
                        flows_.dst_port[fi]);
  coflows_[flows_.coflow_of[fi]].size_released += flows_.size_bytes[fi];
  if (incremental_) {
    slot_of_[fi] = slot_rate_.size();
    slot_rate_.push_back(flows_.rate[fi]);
    slot_sent_.push_back(flows_.sent_bytes[fi]);
    slot_size_.push_back(flows_.size_bytes[fi]);
    slot_delta_.push_back(0.0);
    slot_coflow_.push_back(flows_.coflow_of[fi]);
    // Flows born inside the completion slack (zero/dust sizes) never get
    // a rate change to re-key them — arm the sweep gate here, exactly as
    // the legacy engine's unconditional sweep would catch them.
    const util::Bytes remaining = flows_.size_bytes[fi] - flows_.sent_bytes[fi];
    if (remaining <= slackFor(flows_.size_bytes[fi])) calendar_.pushSnap(fi, now_);
    scheduler_.onFlowStarted(makeView(), fi);
  }
}

void Run::finishCoflow(std::size_t ci) {
  CoflowState& c = coflows_[ci];
  c.done = true;
  c.finish_time = now_;
  ++coflows_done_;
  scheduler_.onCoflowFinished(makeView(), ci);
  for (const std::size_t child : barrier_children_[ci]) {
    if (--barrier_parents_left_[child] == 0) {
      pushEvent(std::max(now_, coflows_[child].spec_arrival),
                TimelineEvent::Kind::kCoflowRelease, child);
    }
  }
}

void Run::processDueEvents() {
  while (!timeline_.empty() && timeline_.top().time <= now_ + util::kEps) {
    const TimelineEvent ev = timeline_.top();
    timeline_.pop();
    switch (ev.kind) {
      case TimelineEvent::Kind::kCoflowRelease:
        releaseCoflow(ev.index);
        break;
      case TimelineEvent::Kind::kFlowRelease:
        releaseFlow(ev.index);
        break;
    }
  }
}

void Run::verifyAllocation() const {
  std::vector<util::Rate> in(static_cast<std::size_t>(fabric_.numPorts()), 0.0);
  std::vector<util::Rate> out(in.size(), 0.0);
  const std::size_t racks =
      fabric_.hasRacks() ? static_cast<std::size_t>(fabric_.numRacks()) : 0;
  std::vector<util::Rate> up(racks, 0.0);
  std::vector<util::Rate> down(racks, 0.0);
  for (const std::size_t fi : active_flows_) {
    const util::Rate rate = flows_.rate[fi];
    if (rate < 0) throw std::logic_error("Simulator: negative rate from scheduler");
    const coflow::PortId src = flows_.src_port[fi];
    const coflow::PortId dst = flows_.dst_port[fi];
    in[static_cast<std::size_t>(src)] += rate;
    out[static_cast<std::size_t>(dst)] += rate;
    if (racks > 0 && fabric_.crossRack(src, dst)) {
      up[static_cast<std::size_t>(fabric_.rackOf(src))] += rate;
      down[static_cast<std::size_t>(fabric_.rackOf(dst))] += rate;
    }
  }
  const double tol = 1e-6;
  for (std::size_t p = 0; p < in.size(); ++p) {
    const auto pid = static_cast<coflow::PortId>(p);
    if (in[p] > fabric_.ingressCapacity(pid) * (1.0 + tol) + util::kEps ||
        out[p] > fabric_.egressCapacity(pid) * (1.0 + tol) + util::kEps) {
      throw std::logic_error("Simulator: allocation exceeds port capacity (" +
                             scheduler_.name() + ")");
    }
  }
  for (std::size_t r = 0; r < racks; ++r) {
    const int rack = static_cast<int>(r);
    if (up[r] > fabric_.rackUplinkCapacity(rack) * (1.0 + tol) + util::kEps ||
        down[r] > fabric_.rackDownlinkCapacity(rack) * (1.0 + tol) + util::kEps) {
      throw std::logic_error("Simulator: allocation exceeds rack capacity (" +
                             scheduler_.name() + ")");
    }
  }
}

SimResult Run::execute() {
  return incremental_ ? executeIncremental() : executeLegacy();
}

SimResult Run::executeLegacy() {
  scheduler_.reset(fabric_);
  processDueEvents();  // Releases everything due at t = 0.

  while (true) {
    if (active_flows_.empty()) {
      if (timeline_.empty()) break;  // All done.
      now_ = timeline_.top().time;
      processDueEvents();
      continue;
    }

    if (++rounds_ > options_.max_rounds) {
      throw std::runtime_error("Simulator: exceeded max rounds (" + scheduler_.name() +
                               ")");
    }

    for (const std::size_t fi : active_flows_) rates_[fi] = 0.0;
    const SimView view = makeView();
    scheduler_.allocate(view, rates_);
    for (const std::size_t fi : active_flows_) {
      flows_.rate[fi] = std::max(0.0, rates_[fi]);
    }
    if (options_.verify_allocations) verifyAllocation();

    // Earliest next state change.
    util::Seconds t_next = timeline_.empty() ? kInfTime : timeline_.top().time;
    for (const std::size_t fi : active_flows_) {
      const util::Rate rate = flows_.rate[fi];
      if (rate > util::kEps) {
        t_next = std::min(t_next, now_ + (flows_.size_bytes[fi] - flows_.sent_bytes[fi]) / rate);
      }
    }
    const util::Seconds wake = scheduler_.nextWakeup(view);
    if (wake > now_) t_next = std::min(t_next, wake);

    if (!std::isfinite(t_next)) {
      throw std::runtime_error("Simulator: starvation deadlock under scheduler " +
                               scheduler_.name());
    }
    t_next = std::max(t_next, now_);  // Guard against wake-ups in the past.

    // Integrate.
    const util::Seconds dt = t_next - now_;
    if (dt > 0) {
      for (const std::size_t fi : active_flows_) {
        const util::Rate rate = flows_.rate[fi];
        if (rate <= 0) continue;
        const util::Bytes delta =
            std::min(rate * dt, flows_.size_bytes[fi] - flows_.sent_bytes[fi]);
        flows_.sent_bytes[fi] += delta;
        coflows_[flows_.coflow_of[fi]].sent += delta;
      }
    }
    now_ = t_next;

    // Flow completions (snap near-complete flows). The second clause is
    // the clock-resolution rule: at large now_ a nearly-done flow's
    // remaining transfer time can round below one ulp of the clock, so
    // its predicted completion equals now_ exactly — every round would
    // then pick dt = 0 and the state never advances. A flow whose
    // completion cannot move the clock is done at the fluid model's time
    // resolution; snapping it is the only way the run can make progress.
    for (std::size_t k = 0; k < active_flows_.size();) {
      const std::size_t fi = active_flows_[k];
      const util::Bytes remaining = flows_.size_bytes[fi] - flows_.sent_bytes[fi];
      const util::Rate frate = flows_.rate[fi];
      if (remaining <= slackFor(flows_.size_bytes[fi]) ||
          (frate > util::kEps && now_ + remaining / frate <= now_)) {
        const std::size_t ci = flows_.coflow_of[fi];
        coflows_[ci].sent += remaining;  // Account the snap.
        flows_.sent_bytes[fi] = flows_.size_bytes[fi];
        flows_.done[fi] = 1;
        flows_.rate[fi] = 0;
        active_flows_[k] = active_flows_.back();
        active_flows_.pop_back();
        active_index_.removeFlow(ci, fi);
        CoflowState& c = coflows_[ci];
        if (++c.flows_done == c.flow_indices.size()) {
          finishCoflow(ci);
        }
      } else {
        ++k;
      }
    }

    processDueEvents();
  }

  if (coflows_done_ != coflows_.size()) {
    throw std::runtime_error("Simulator: run ended with unfinished coflows");
  }
  allocate_calls_ = rounds_;
  return buildResult();
}

// --- Incremental (event-driven) engine -------------------------------
//
// Produces trajectories equivalent to executeLegacy() to 1e-9 on every
// finish time with identical round counts
// (tests/engine_equivalence_test.cc holds every scheduler to that bar).
// The per-round integration arithmetic — expression, order, and the
// completion-sweep scan order — is kept exactly the legacy loop's:
// schedulers that compare exact attained service (continuous CLAS's
// sort, D-CLAS threshold back-dating) amplify drift into different
// scheduling decisions. The engine's savings:
//
//  1. Allocation reuse (PR 3). Every membership change bumps the
//     active-index epoch, and schedulers opt in via scheduleEpoch().
//     When both epochs match the installed pair, the round skips rate
//     zeroing, allocate(), the rate copy, and verification outright.
//  2. Per-coflow aggregate rates (SimView::coflow_rates), rebuilt once
//     per install by summing flow rates in group flow-index order —
//     bitwise equal to the per-flow fallback sum in
//     coflowAggregateRate().
//  3. The event calendar (calendar.h). The legacy loop's two O(active)
//     scans per round — the t_next division scan and the completion
//     sweep — become a heap peek and a heap-gated sweep: per-flow
//     completion/snap predictions are computed once per rate change
//     (lazily invalidated, so reused rounds re-key nothing) and the
//     sweep only runs on rounds where some flow is predicted
//     snap-eligible. Cached predictions drift from the legacy per-round
//     recomputations by accumulated-rounding ulps; the completion slack
//     (1e-3 bytes) and the gate's grace window absorb that drift, which
//     is what keeps the round structure identical.
//  4. Slot-packed SoA integration. Active flows' (rate, sent, size) live
//     in dense arrays aligned with active_flows_, so the one remaining
//     per-round O(active) pass — rate integration — is a contiguous,
//     branch-light loop (min/add; rate-0 flows contribute an exact +0.0,
//     bitwise identical to the legacy skip), followed by a scalar
//     scatter of the deltas into per-coflow totals in the same order the
//     legacy loop accumulates them.

void Run::rekeyFlow(std::size_t fi, util::Bytes remaining, util::Bytes slack) {
  calendar_.invalidate(fi);
  const util::Rate rate = flows_.rate[fi];
  if (rate > util::kEps) {
    calendar_.pushCompletion(fi, now_ + remaining / rate);
  }
  // `rate > 0` (not > kEps) so dust-rate flows that creep into the slack
  // window over a long horizon still open the gate when legacy would
  // snap them.
  if (rate > 0) {
    calendar_.pushSnap(fi, now_ + (remaining - slack) / rate);
  } else if (remaining <= slack) {
    calendar_.pushSnap(fi, now_);  // Zero-rate but already snap-eligible.
  }
}

void Run::installAllocation(const SimView& view) {
  ++allocate_calls_;
  // Materialize attained service for the scheduler: slot_sent_ is the
  // canonical copy between installs (the legacy engine updates the
  // per-flow field directly). rates_ needs no zeroing here — the rate
  // copy-back loop below re-zeroes each entry as it reads it.
  for (std::size_t k = 0; k < active_flows_.size(); ++k) {
    flows_.sent_bytes[active_flows_[k]] = slot_sent_[k];
  }
  scheduler_.allocate(view, rates_);
  changed_slots_.clear();
  for (std::size_t k = 0; k < active_flows_.size(); ++k) {
    const std::size_t fi = active_flows_[k];
    const util::Rate rate = std::max(0.0, rates_[fi]);
    // Re-zero in the same pass (the entry is already in cache) so the
    // next install skips a second scattered sweep over rates_.
    rates_[fi] = 0.0;
    if (rate != slot_rate_[k]) {
      // Only flows whose installed rate actually changed get re-keyed;
      // everything else keeps its calendar entries (lazy invalidation).
      // slot_rate_[k] always mirrors flows_.rate[fi], so the dense slot
      // read stands in for the scattered arena read.
      flows_.rate[fi] = rate;
      slot_rate_[k] = rate;
      changed_slots_.push_back(static_cast<std::uint32_t>(k));
    }
  }
  if (2 * changed_slots_.size() > active_flows_.size()) {
    // Most rates moved (the common case right after a membership change:
    // water-filling redistributes globally). Re-keying those one sift-up
    // at a time costs O(changed log heap) and buries the heaps in stale
    // entries; one contiguous heapify over *all* active flows is cheaper
    // and leaves both heaps fully valid. Recomputing an unchanged flow's
    // keys from current canonical state is safe — keys only nominate,
    // and the refreshed key equals this round's legacy expression.
    calendar_.beginRebuild();
    for (std::size_t k = 0; k < active_flows_.size(); ++k) {
      const std::size_t fi = active_flows_[k];
      const util::Rate rate = slot_rate_[k];
      const util::Bytes remaining = slot_size_[k] - slot_sent_[k];
      const util::Bytes slack = slackFor(slot_size_[k]);
      if (rate > util::kEps) calendar_.stageCompletion(fi, now_ + remaining / rate);
      if (rate > 0) {
        calendar_.stageSnap(fi, now_ + (remaining - slack) / rate);
      } else if (remaining <= slack) {
        calendar_.stageSnap(fi, now_);
      }
    }
    calendar_.finishRebuild();
  } else {
    for (const std::uint32_t k : changed_slots_) {
      rekeyFlow(active_flows_[k], slot_size_[k] - slot_sent_[k],
                slackFor(slot_size_[k]));
    }
  }
  if (options_.verify_allocations) verifyAllocation();

  // Aggregates in group flow-index order: coflowAggregateRate()'s
  // fallback sums in this exact order under the legacy engine, and
  // scheduler wake-up predictions need both engines to read bitwise-
  // equal totals.
  for (const ActiveGroup& g : active_index_.groups()) {
    util::Rate total = 0.0;
    for (const std::size_t fi : g.flow_indices) total += flows_.rate[fi];
    coflow_rate_[g.coflow_index] = total;
  }
  ++heap_rebuilds_;

  installed_ = true;
  installed_index_epoch_ = active_index_.epoch();
  installed_sched_epoch_ = scheduler_.scheduleEpoch(view);
}

void Run::sweepCompletions() {
  // Legacy-identical completion condition and iteration order (scan with
  // swap-remove re-examination), over the slot-packed state. The slot
  // arrays shadow active_flows_ element-for-element, so same-time
  // completions are processed in the exact order the legacy scan visits
  // them — the ordering contract documented in DESIGN.md section 7.
  for (std::size_t k = 0; k < active_flows_.size();) {
    const util::Bytes remaining = slot_size_[k] - slot_sent_[k];
    const util::Rate frate = slot_rate_[k];
    if (remaining <= slackFor(slot_size_[k]) ||
        (frate > util::kEps && now_ + remaining / frate <= now_)) {
      const std::size_t fi = active_flows_[k];
      const std::size_t ci = slot_coflow_[k];
      coflows_[ci].sent += remaining;  // Account the snap.
      flows_.sent_bytes[fi] = flows_.size_bytes[fi];
      flows_.done[fi] = 1;
      flows_.rate[fi] = 0;
      calendar_.invalidate(fi);
      active_flows_[k] = active_flows_.back();
      active_flows_.pop_back();
      slot_rate_[k] = slot_rate_.back();
      slot_rate_.pop_back();
      slot_sent_[k] = slot_sent_.back();
      slot_sent_.pop_back();
      slot_size_[k] = slot_size_.back();
      slot_size_.pop_back();
      slot_coflow_[k] = slot_coflow_.back();
      slot_coflow_.pop_back();
      slot_delta_.pop_back();
      if (k < active_flows_.size()) slot_of_[active_flows_[k]] = k;
      active_index_.removeFlow(ci, fi);
      scheduler_.onFlowCompleted(makeView(), fi);
      CoflowState& c = coflows_[ci];
      if (++c.flows_done == c.flow_indices.size()) {
        finishCoflow(ci);
      }
    } else {
      ++k;
    }
  }
}

SimResult Run::executeIncremental() {
  scheduler_.reset(fabric_);
  coflow_rate_.assign(coflows_.size(), 0.0);
  calendar_.reset(flows_.size());
  slot_of_.assign(flows_.size(), 0);
  processDueEvents();  // Releases everything due at t = 0.

  while (true) {
    if (active_flows_.empty()) {
      if (timeline_.empty()) break;  // All done.
      now_ = timeline_.top().time;
      installed_ = false;
      processDueEvents();
      continue;
    }

    if (++rounds_ > options_.max_rounds) {
      throw std::runtime_error("Simulator: exceeded max rounds (" + scheduler_.name() +
                               ")");
    }

    const SimView view = makeView();
    bool reuse = installed_ && active_index_.epoch() == installed_index_epoch_;
    if (reuse) {
      // scheduleEpoch() is also the scheduler's per-round sync hook
      // (D-CLAS applies boundary demotions here), so it must run before
      // the reuse decision is final.
      const std::uint64_t se = scheduler_.scheduleEpoch(view);
      reuse = se != 0 && se == installed_sched_epoch_;
    }
    if (reuse) {
      ++reused_allocations_;
    } else {
      installAllocation(view);
      calendar_.compactIfBloated();
    }

    // Earliest next state change: timeline arrival, flow completion, or
    // scheduler wake-up. The calendar replaces the legacy engine's
    // O(active) division scan with a heap peek — but cached keys drift
    // from the legacy per-round recomputation by accumulated-rounding
    // ulps, and schedulers that sort on exact attained service
    // (continuous CLAS) amplify a one-ulp t_next difference into
    // different decisions. So the cached keys only *nominate*: every
    // candidate within a drift-covering window of the cached minimum
    // gets the exact legacy expression recomputed from canonical state,
    // and t_next takes the exact minimum. The window (1e-9 absolute +
    // 1e-9 relative) is orders of magnitude above the observed drift
    // (~1e-10 s over thousands of rounds) yet admits only near-
    // simultaneous completions, so the recomputation stays O(ties).
    const util::Seconds cached_min = calendar_.nextCompletion();
    util::Seconds next_completion = kInfTime;
    if (cached_min < kInfTime) {
      const util::Seconds window = 1e-9 + 1e-9 * std::abs(cached_min);
      calendar_.collectCompletionsNear(cached_min + window, completion_due_);
      for (const std::uint32_t fi : completion_due_) {
        const std::size_t k = slot_of_[fi];
        next_completion = std::min(
            next_completion, now_ + (slot_size_[k] - slot_sent_[k]) / slot_rate_[k]);
      }
    }
    util::Seconds t_next = timeline_.empty() ? kInfTime : timeline_.top().time;
    t_next = std::min(t_next, next_completion);
    const util::Seconds wake = scheduler_.nextWakeup(view);
    if (wake > now_) t_next = std::min(t_next, wake);

    if (!std::isfinite(t_next)) {
      throw std::runtime_error("Simulator: starvation deadlock under scheduler " +
                               scheduler_.name());
    }
    t_next = std::max(t_next, now_);  // Guard against wake-ups in the past.
    if (t_next == next_completion) calendar_.noteEventProcessed();

    // Integrate: contiguous passes over the slot-packed state. Pass 1 is
    // the vectorizable min/add; pass 2 scatters deltas into per-coflow
    // totals in slot (= legacy scan) order. A rate-0 flow's delta is an
    // exact +0.0 — bitwise identical to the legacy `continue`.
    const util::Seconds dt = t_next - now_;
    if (dt > 0) {
      const std::size_t n = active_flows_.size();
      const util::Rate* __restrict rate = slot_rate_.data();
      const util::Bytes* __restrict size = slot_size_.data();
      util::Bytes* __restrict sent = slot_sent_.data();
      util::Bytes* __restrict delta = slot_delta_.data();
      for (std::size_t k = 0; k < n; ++k) {
        const util::Bytes d = std::min(rate[k] * dt, size[k] - sent[k]);
        sent[k] += d;
        delta[k] = d;
      }
      for (std::size_t k = 0; k < n; ++k) {
        coflows_[slot_coflow_[k]].sent += delta[k];
      }
    }
    now_ = t_next;

    // The relative term covers rounding in the predictions at large
    // now_, where one ulp can exceed the absolute kEps grace.
    const util::Seconds gate = now_ * (1.0 + 1e-12) + util::kEps;
    if (calendar_.drainSnapDue(gate, snap_due_)) {
      sweepCompletions();
      // Drained flows the sweep did not complete (the cached prediction
      // landed a hair early): refresh both keys from current canonical
      // state — exactly the legacy per-round recomputation — so the gate
      // re-arms at the right time instead of re-firing every round.
      for (const std::uint32_t fi : snap_due_) {
        if (flows_.done[fi] != 0) continue;
        const std::size_t k = slot_of_[fi];
        const util::Bytes remaining = slot_size_[k] - slot_sent_[k];
        const util::Bytes slack = slackFor(slot_size_[k]);
        calendar_.invalidate(fi);
        const util::Rate rate = slot_rate_[k];
        if (rate > util::kEps) calendar_.pushCompletion(fi, now_ + remaining / rate);
        if (rate > 0) calendar_.pushSnap(fi, now_ + (remaining - slack) / rate);
      }
    }

    processDueEvents();
  }

  if (coflows_done_ != coflows_.size()) {
    throw std::runtime_error("Simulator: run ended with unfinished coflows");
  }
  return buildResult();
}

SimResult Run::buildResult() {
  SimResult result;
  result.scheduler = scheduler_.name();
  result.allocation_rounds = rounds_;
  result.allocate_calls = allocate_calls_;
  result.reused_allocations = reused_allocations_;
  result.heap_rebuilds = heap_rebuilds_;
  result.events_processed = calendar_.eventsProcessed();
  result.heap_rekeys = calendar_.rekeys();
  result.makespan = now_;
  result.rejected_coflows = scheduler_.rejectedCoflows();

  // Finishes-Before adjustment: a coflow's effective finish is the max of
  // its own finish and its pipelined parents' effective finishes.
  std::vector<util::Seconds> adjusted(coflows_.size(), -1.0);
  std::vector<int> visiting(coflows_.size(), 0);
  auto dfs = [&](auto&& self, std::size_t ci) -> util::Seconds {
    if (adjusted[ci] >= 0) return adjusted[ci];
    if (visiting[ci]) {
      throw std::runtime_error("Simulator: cycle in finishes_before dependencies");
    }
    visiting[ci] = 1;
    util::Seconds t = coflows_[ci].finish_time;
    for (const std::size_t pi : fb_parents_[ci]) t = std::max(t, self(self, pi));
    visiting[ci] = 0;
    adjusted[ci] = t;
    return t;
  };

  std::unordered_map<coflow::JobId, JobRecord> job_records;
  for (const coflow::JobSpec& job : workload_.jobs) {
    JobRecord jr;
    jr.id = job.id;
    jr.arrival = job.arrival;
    jr.compute_time = job.compute_time;
    jr.comm_finish = job.arrival;
    job_records[job.id] = jr;
  }

  for (std::size_t ci = 0; ci < coflows_.size(); ++ci) {
    const CoflowState& c = coflows_[ci];
    const coflow::CoflowSpec& spec = *specs_[ci];
    CoflowRecord rec;
    rec.id = c.id;
    rec.job = c.job;
    rec.spec_arrival = c.spec_arrival;
    rec.release = c.release_time;
    rec.finish_own = c.finish_time;
    rec.finish = dfs(dfs, ci);
    rec.bytes = spec.totalBytes();
    rec.max_flow_bytes = spec.maxFlowBytes();
    rec.width = spec.width();
    rec.deadline = spec.deadline;
    if (rec.hasDeadline()) {
      ++result.deadline_coflows;
      if (rec.missedDeadline()) ++result.deadline_misses;
    }
    result.coflows.push_back(rec);
    JobRecord& jr = job_records.at(c.job);
    jr.comm_finish = std::max(jr.comm_finish, rec.finish);
  }

  for (const coflow::JobSpec& job : workload_.jobs) {
    result.jobs.push_back(job_records.at(job.id));
  }
  return result;
}

}  // namespace

Simulator::Simulator(fabric::FabricConfig fabric_config, Scheduler& scheduler,
                     SimOptions options)
    : fabric_config_(fabric_config), scheduler_(scheduler), options_(options) {}

SimResult Simulator::run(const coflow::Workload& workload) {
  Run run(fabric_config_, scheduler_, options_, workload);
  SimResult result = run.execute();
  if (options_.metrics != nullptr) recordSimResult(*options_.metrics, result);
  return result;
}

SimResult runSimulation(const coflow::Workload& workload,
                        fabric::FabricConfig fabric_config, Scheduler& scheduler,
                        SimOptions options) {
  Simulator sim(fabric_config, scheduler, options);
  return sim.run(workload);
}

}  // namespace aalo::sim
