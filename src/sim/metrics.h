// Registry bridging for simulation results.
//
// recordSimResult folds one run's engine totals and completion times into
// a registry under the `aalo_sim_*` families, labeled by scheduler name
// so sweep runs (aalo_sim --jobs, the batch runner) keep per-scheduler
// series apart. Recording happens once per run, after the engine
// finishes — the hot loop never touches the registry.
#pragma once

#include "obs/metrics.h"
#include "sim/records.h"

namespace aalo::sim {

void recordSimResult(obs::Registry& registry, const SimResult& result);

}  // namespace aalo::sim
