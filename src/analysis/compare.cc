#include "analysis/compare.h"

#include <stdexcept>
#include <unordered_map>

#include "workload/facebook.h"

namespace aalo::analysis {

namespace {

/// Pairs records by coflow id; throws on population mismatch.
std::vector<std::pair<const sim::CoflowRecord*, const sim::CoflowRecord*>> joinCoflows(
    const sim::SimResult& compared, const sim::SimResult& baseline) {
  std::unordered_map<coflow::CoflowId, const sim::CoflowRecord*> base;
  for (const sim::CoflowRecord& r : baseline.coflows) base[r.id] = &r;
  std::vector<std::pair<const sim::CoflowRecord*, const sim::CoflowRecord*>> joined;
  joined.reserve(compared.coflows.size());
  for (const sim::CoflowRecord& r : compared.coflows) {
    const auto it = base.find(r.id);
    if (it == base.end()) {
      throw std::invalid_argument("normalizedCct: coflow " + r.id.toString() +
                                  " missing from baseline run");
    }
    joined.emplace_back(&r, it->second);
  }
  return joined;
}

NormalizedTimes ratiosFromSamples(const util::Summary& compared,
                                  const util::Summary& baseline) {
  NormalizedTimes out;
  out.count = compared.count();
  if (compared.empty() || baseline.empty()) return out;
  out.avg = util::safeRatio(compared.mean(), baseline.mean());
  out.p95 = util::safeRatio(compared.percentile(95), baseline.percentile(95));
  return out;
}

}  // namespace

int coflowBin(const sim::CoflowRecord& record) {
  return static_cast<int>(
      workload::classifyCoflow(record.max_flow_bytes, record.width));
}

int commBand(double comm_fraction) {
  if (comm_fraction < 0.25) return 0;
  if (comm_fraction < 0.50) return 1;
  if (comm_fraction < 0.75) return 2;
  return 3;
}

NormalizedTimes normalizedCct(const sim::SimResult& compared,
                              const sim::SimResult& baseline) {
  return normalizedCctForBin(compared, baseline, 0);
}

NormalizedTimes normalizedCctForBin(const sim::SimResult& compared,
                                    const sim::SimResult& baseline, int bin) {
  util::Summary cmp;
  util::Summary base;
  for (const auto& [c, b] : joinCoflows(compared, baseline)) {
    if (bin != 0 && coflowBin(*c) != bin) continue;
    cmp.add(c->cct());
    base.add(b->cct());
  }
  return ratiosFromSamples(cmp, base);
}

JobComparison normalizedJobTimes(const sim::SimResult& compared,
                                 const sim::SimResult& baseline,
                                 const sim::SimResult& binning_run, int band) {
  std::unordered_map<coflow::JobId, const sim::JobRecord*> base;
  for (const sim::JobRecord& r : baseline.jobs) base[r.id] = &r;
  std::unordered_map<coflow::JobId, int> band_of;
  for (const sim::JobRecord& r : binning_run.jobs) {
    band_of[r.id] = commBand(r.commFraction());
  }

  util::Summary cmp_jct;
  util::Summary base_jct;
  util::Summary cmp_comm;
  util::Summary base_comm;
  for (const sim::JobRecord& r : compared.jobs) {
    const auto bit = base.find(r.id);
    const auto band_it = band_of.find(r.id);
    if (bit == base.end() || band_it == band_of.end()) {
      throw std::invalid_argument("normalizedJobTimes: job population mismatch");
    }
    if (band != 4 && band_it->second != band) continue;
    cmp_jct.add(r.jct());
    base_jct.add(bit->second->jct());
    cmp_comm.add(r.commTime());
    base_comm.add(bit->second->commTime());
  }
  JobComparison out;
  out.jct = ratiosFromSamples(cmp_jct, base_jct);
  out.comm = ratiosFromSamples(cmp_comm, base_comm);
  return out;
}

std::vector<double> cctSamples(const sim::SimResult& result, int bin) {
  std::vector<double> samples;
  for (const sim::CoflowRecord& r : result.coflows) {
    if (bin != 0 && coflowBin(r) != bin) continue;
    samples.push_back(r.cct());
  }
  return samples;
}

std::map<int, double> byteShareByBin(const sim::SimResult& result) {
  std::map<int, double> share = {{1, 0.0}, {2, 0.0}, {3, 0.0}, {4, 0.0}};
  double total = 0;
  for (const sim::CoflowRecord& r : result.coflows) {
    share[coflowBin(r)] += r.bytes;
    total += r.bytes;
  }
  if (total > 0) {
    for (auto& [bin, bytes] : share) bytes /= total;
  }
  return share;
}

}  // namespace aalo::analysis
