// Experiment metrics: the paper's "Normalized Completion Time" —
// a compared scheme's duration divided by Aalo's (>1 means Aalo is
// faster) — computed overall, per coflow bin (Table 3), and per job
// communication bin (Table 2).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/records.h"
#include "util/stats.h"

namespace aalo::analysis {

/// Average and 95th-percentile normalized completion time of `compared`
/// w.r.t. `baseline` (the paper normalizes against Aalo, so pass Aalo's
/// result as `baseline`). Ratios are of the bin's aggregate statistics,
/// matching the paper's methodology.
struct NormalizedTimes {
  double avg = 0;
  double p95 = 0;
  std::size_t count = 0;
};

/// Coflow records joined across runs by CoflowId; throws if the two runs
/// simulated different coflow populations.
NormalizedTimes normalizedCct(const sim::SimResult& compared,
                              const sim::SimResult& baseline);

/// Same, restricted to coflows in the given Table 3 bin (1..4).
NormalizedTimes normalizedCctForBin(const sim::SimResult& compared,
                                    const sim::SimResult& baseline, int bin);

/// Normalized job completion / communication times per Table 2 band.
/// Band index 0..3 = <25 %, 25-49 %, 50-74 %, >=75 %; 4 = all jobs.
/// Jobs are binned by their communication fraction under `binning_run`
/// (the workload's "status quo" execution; the paper bins by the trace).
struct JobComparison {
  NormalizedTimes jct;
  NormalizedTimes comm;
};
JobComparison normalizedJobTimes(const sim::SimResult& compared,
                                 const sim::SimResult& baseline,
                                 const sim::SimResult& binning_run, int band);

/// Table 3 bin (1..4) of a coflow record.
int coflowBin(const sim::CoflowRecord& record);

/// Table 2 band (0..3) from a communication fraction.
int commBand(double comm_fraction);

/// CCT samples (seconds) of a run, optionally bin-filtered (0 = all).
std::vector<double> cctSamples(const sim::SimResult& result, int bin = 0);

/// Fraction of total bytes carried by each Table 3 bin.
std::map<int, double> byteShareByBin(const sim::SimResult& result);

}  // namespace aalo::analysis
